//! Property-based differential tests: a [`TreeClock`] and a
//! [`VectorClock`] driven through the *same* random (but causally valid)
//! sequence of operations must represent identical vector times at every
//! step, report identical `changed` work (the data-structure-independent
//! `VTWork` contribution), agree on ordering queries, and the tree clock
//! must satisfy all structural invariants throughout.

use proptest::prelude::*;

use tc_core::{CopyMode, HybridClock, LogicalClock, ThreadId, TreeClock, VectorClock};

/// One causally valid step of a lock/variable-based execution. The steps
/// mirror how the HB/SHB engines drive clocks, which is the contract
/// under which tree clocks operate.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// `acq(l)` by thread `t`: increment + join with the lock clock.
    Acquire { t: usize, l: usize },
    /// `rel(l)` by thread `t`: increment + monotone-copy into the lock.
    Release { t: usize, l: usize },
    /// `r(x)` by `t`: increment + join with the last-write clock.
    Read { t: usize, x: usize },
    /// `w(x)` by `t`: increment + copy-check-monotone into last-write.
    Write { t: usize, x: usize },
    /// Thread `t` joins thread `u`'s clock (a `join(u)` event).
    JoinThread { t: usize, u: usize },
}

const THREADS: usize = 6;
const LOCKS: usize = 3;
const VARS: usize = 3;

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..THREADS, 0..LOCKS).prop_map(|(t, l)| Step::Acquire { t, l }),
        (0..THREADS, 0..LOCKS).prop_map(|(t, l)| Step::Release { t, l }),
        (0..THREADS, 0..VARS).prop_map(|(t, x)| Step::Read { t, x }),
        (0..THREADS, 0..VARS).prop_map(|(t, x)| Step::Write { t, x }),
        (0..THREADS, 0..THREADS).prop_map(|(t, u)| Step::JoinThread { t, u }),
    ]
}

/// A pair of clock universes (one per representation) driven in
/// lockstep.
struct Universe {
    tc_threads: Vec<TreeClock>,
    vc_threads: Vec<VectorClock>,
    tc_locks: Vec<TreeClock>,
    vc_locks: Vec<VectorClock>,
    tc_lw: Vec<TreeClock>,
    vc_lw: Vec<VectorClock>,
    /// Tracks, per lock, whether a release must be preceded by an acquire
    /// by the same thread (to respect lock semantics we only release what
    /// the thread last acquired).
    held_by: Vec<Option<usize>>,
}

impl Universe {
    fn new() -> Self {
        let mut u = Universe {
            tc_threads: (0..THREADS).map(|_| TreeClock::new()).collect(),
            vc_threads: (0..THREADS).map(|_| VectorClock::new()).collect(),
            tc_locks: (0..LOCKS).map(|_| TreeClock::new()).collect(),
            vc_locks: (0..LOCKS).map(|_| VectorClock::new()).collect(),
            tc_lw: (0..VARS).map(|_| TreeClock::new()).collect(),
            vc_lw: (0..VARS).map(|_| VectorClock::new()).collect(),
            held_by: vec![None; LOCKS],
        };
        for t in 0..THREADS {
            u.tc_threads[t].init_root(ThreadId::new(t as u32));
            u.vc_threads[t].init_root(ThreadId::new(t as u32));
        }
        u
    }

    /// Applies a step to both universes; returns false if the step was
    /// skipped to keep the execution causally valid.
    fn apply(&mut self, step: Step) -> bool {
        match step {
            Step::Acquire { t, l } => {
                if self.held_by[l].is_some() {
                    return false; // lock busy: skip to respect semantics
                }
                self.held_by[l] = Some(t);
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let a = self.tc_threads[t].join_counted(&self.tc_locks[l]);
                let b = self.vc_threads[t].join_counted(&self.vc_locks[l]);
                assert_eq!(
                    a.changed, b.changed,
                    "VTWork(acquire) must be representation independent"
                );
                true
            }
            Step::Release { t, l } => {
                if self.held_by[l] != Some(t) {
                    return false;
                }
                self.held_by[l] = None;
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let a = self.tc_locks[l].monotone_copy_counted(&self.tc_threads[t]);
                let b = self.vc_locks[l].monotone_copy_counted(&self.vc_threads[t]);
                assert_eq!(
                    a.changed, b.changed,
                    "VTWork(release) must be representation independent"
                );
                true
            }
            Step::Read { t, x } => {
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let a = self.tc_threads[t].join_counted(&self.tc_lw[x]);
                let b = self.vc_threads[t].join_counted(&self.vc_lw[x]);
                assert_eq!(a.changed, b.changed);
                true
            }
            Step::Write { t, x } => {
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                // The O(1) monotonicity pre-check on the tree clock must
                // agree with the full pointwise comparison.
                let full = self.vc_lw[x].leq(&self.vc_threads[t]);
                let (mode, a) = self.tc_lw[x].copy_check_monotone_counted(&self.tc_threads[t]);
                assert_eq!(
                    mode == CopyMode::Monotone,
                    full,
                    "tree clock O(1) leq disagrees with pointwise comparison"
                );
                let (_, b) = self.vc_lw[x].copy_check_monotone_counted(&self.vc_threads[t]);
                assert_eq!(a.changed, b.changed);
                true
            }
            Step::JoinThread { t, u } => {
                if t == u {
                    return false;
                }
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let (a, b);
                {
                    let (tc_t, tc_u) = index_two(&mut self.tc_threads, t, u);
                    a = tc_t.join_counted(tc_u);
                }
                {
                    let (vc_t, vc_u) = index_two(&mut self.vc_threads, t, u);
                    b = vc_t.join_counted(vc_u);
                }
                assert_eq!(a.changed, b.changed);
                true
            }
        }
    }

    fn check_agreement(&self) {
        for t in 0..THREADS {
            assert_eq!(
                self.tc_threads[t].vector_time(),
                self.vc_threads[t].vector_time(),
                "thread {t} clocks diverged"
            );
            self.tc_threads[t].check_invariants().unwrap();
        }
        for l in 0..LOCKS {
            assert_eq!(
                self.tc_locks[l].vector_time(),
                self.vc_locks[l].vector_time(),
                "lock {l} clocks diverged"
            );
            self.tc_locks[l].check_invariants().unwrap();
        }
        for x in 0..VARS {
            assert_eq!(
                self.tc_lw[x].vector_time(),
                self.vc_lw[x].vector_time(),
                "last-write {x} clocks diverged"
            );
            self.tc_lw[x].check_invariants().unwrap();
        }
        // The O(1) tree-clock ordering check must agree with the full
        // pointwise comparison on clocks from the same computation.
        for a in 0..THREADS {
            for b in 0..THREADS {
                assert_eq!(
                    self.tc_threads[a].leq(&self.tc_threads[b]),
                    self.vc_threads[a].leq(&self.vc_threads[b]),
                    "leq disagreement between threads {a} and {b}"
                );
            }
        }
    }
}

/// Mutable access to two distinct indices of a slice.
fn index_two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &T) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = v.split_at_mut(j);
        (&mut a[i], &b[0])
    } else {
        let (a, b) = v.split_at_mut(i);
        (&mut b[0], &a[j])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The flagship differential property: whatever valid op sequence is
    /// thrown at them, the two representations remain observationally
    /// identical and the tree stays structurally sound.
    #[test]
    fn tree_and_vector_clocks_agree(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let mut u = Universe::new();
        for step in steps {
            u.apply(step);
        }
        u.check_agreement();
    }

    /// Checking agreement after *every* step (slower, fewer cases)
    /// pinpoints the first divergence if one exists.
    #[test]
    fn agreement_holds_stepwise(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let mut u = Universe::new();
        for step in steps {
            if u.apply(step) {
                u.check_agreement();
            }
        }
    }
}

#[test]
fn long_deterministic_smoke_run() {
    // A long fixed pseudo-random run (cheap LCG) as a deterministic
    // regression net in addition to the proptest exploration.
    let mut u = Universe::new();
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..5_000 {
        let r = rand();
        let t = (r % THREADS as u64) as usize;
        let aux = ((r >> 8) % 3) as usize;
        let step = match (r >> 16) % 5 {
            0 => Step::Acquire { t, l: aux },
            1 => Step::Release { t, l: aux },
            2 => Step::Read { t, x: aux },
            3 => Step::Write { t, x: aux },
            _ => Step::JoinThread {
                t,
                u: ((r >> 24) % THREADS as u64) as usize,
            },
        };
        u.apply(step);
        if i % 512 == 0 {
            u.check_agreement();
        }
    }
    u.check_agreement();
}

// ---------------------------------------------------------------------
// Lazy (empty) vs eagerly-zeroed clocks
// ---------------------------------------------------------------------

/// Drives a lazily created clock (`C::new()`) and an eagerly
/// dimension-sized one (`C::with_threads(k)`) through the same auxiliary
/// clock life cycle (joins and copies from rooted thread clocks) and
/// asserts they are observationally identical: same represented times,
/// same ordering answers, same `changed` (VTWork) accounting. This is
/// the contract that lets the engines start every per-variable clock
/// empty — an untouched variable costs O(1) — without perturbing any
/// cross-backend metric.
fn lazy_matches_eager<C: LogicalClock + PartialEq + std::fmt::Debug>() {
    const K: usize = 16;
    let mut lazy = C::new();
    let mut eager = C::with_threads(K);

    // Thread clocks with some cross-thread knowledge.
    let mut threads: Vec<C> = (0..K)
        .map(|i| {
            let mut c = C::new();
            c.init_root(ThreadId::new(i as u32));
            c.increment(1 + i as u32);
            c
        })
        .collect();
    let snapshot = threads[3].clone();
    threads[3].join(&snapshot); // no-op join keeps the clock valid
    for i in 1..4 {
        let (a, b) = threads.split_at_mut(i);
        b[0].join(&a[i - 1]);
    }

    // First write: copy-check into the auxiliary clock.
    let (m1, s1) = lazy.copy_check_monotone_counted(&threads[3]);
    let (m2, s2) = eager.copy_check_monotone_counted(&threads[3]);
    assert_eq!(m1, m2, "copy modes must agree");
    assert_eq!(s1.changed, s2.changed, "VTWork contribution must agree");
    assert_eq!(lazy.vector_time(), eager.vector_time());

    // Joins from another thread's clock.
    let mut rlazy = C::new();
    let mut reager = C::with_threads(K);
    rlazy.init_root(ThreadId::new(9));
    reager.init_root(ThreadId::new(9));
    rlazy.increment(2);
    reager.increment(2);
    let j1 = rlazy.join_counted(&lazy);
    let j2 = reager.join_counted(&eager);
    assert_eq!(j1.changed, j2.changed);
    assert_eq!(rlazy.vector_time(), reager.vector_time());

    // Ordering queries agree in every direction.
    assert_eq!(lazy.leq(&rlazy), eager.leq(&reager));
    assert!(lazy == eager, "clocks must compare equal");
    for t in 0..K as u32 {
        assert_eq!(lazy.get(ThreadId::new(t)), eager.get(ThreadId::new(t)));
    }
}

#[test]
fn lazy_tree_clock_matches_eagerly_zeroed() {
    lazy_matches_eager::<TreeClock>();
}

#[test]
fn lazy_vector_clock_matches_eagerly_zeroed() {
    lazy_matches_eager::<VectorClock>();
}

#[test]
fn lazy_hybrid_clock_matches_eagerly_zeroed() {
    lazy_matches_eager::<HybridClock>();
}

/// A cleared (pool-recycled) clock must behave exactly like a fresh one.
fn cleared_matches_fresh<C: LogicalClock + PartialEq>() {
    let mut src = C::new();
    src.init_root(ThreadId::new(5));
    src.increment(7);

    let mut used = C::new();
    used.init_root(ThreadId::new(2));
    used.increment(3);
    used.join(&src);
    used.clear();
    assert!(used.is_empty());

    let mut fresh = C::new();
    let (mu, su) = used.copy_check_monotone_counted(&src);
    let (mf, sf) = fresh.copy_check_monotone_counted(&src);
    assert_eq!(mu, mf);
    assert_eq!(su.changed, sf.changed);
    assert!(used == fresh);
    assert_eq!(used.vector_time(), fresh.vector_time());
}

#[test]
fn cleared_tree_clock_matches_fresh() {
    cleared_matches_fresh::<TreeClock>();
}

#[test]
fn cleared_vector_clock_matches_fresh() {
    cleared_matches_fresh::<VectorClock>();
}

#[test]
fn cleared_hybrid_clock_matches_fresh() {
    cleared_matches_fresh::<HybridClock>();
}

/// The hybrid clock driven through the same causally valid op sequence
/// as a tree clock stays observationally identical — including exact
/// `changed` (VTWork) accounting — whatever representation its density
/// window picked along the way.
#[test]
fn hybrid_clock_matches_tree_on_a_long_mixed_run() {
    const THREADS: usize = 8;
    let mut hc_threads: Vec<HybridClock> = Vec::new();
    let mut tc_threads: Vec<TreeClock> = Vec::new();
    for t in 0..THREADS {
        let mut h = HybridClock::new();
        h.init_root(ThreadId::new(t as u32));
        hc_threads.push(h);
        let mut c = TreeClock::new();
        c.init_root(ThreadId::new(t as u32));
        tc_threads.push(c);
    }
    let mut hc_lock = HybridClock::new();
    let mut tc_lock = TreeClock::new();

    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for step in 0..4_000 {
        let r = rand();
        let t = (r % THREADS as u64) as usize;
        // One full critical section (the engines' protocol: a release
        // follows the same thread's acquire, so the copy is monotone).
        hc_threads[t].increment(1);
        tc_threads[t].increment(1);
        let a = hc_threads[t].join_counted(&hc_lock);
        let b = tc_threads[t].join_counted(&tc_lock);
        assert_eq!(a.changed, b.changed, "step {step}: join VTWork diverged");
        hc_threads[t].increment(1);
        tc_threads[t].increment(1);
        let a = hc_lock.monotone_copy_counted(&hc_threads[t]);
        let b = tc_lock.monotone_copy_counted(&tc_threads[t]);
        assert_eq!(a.changed, b.changed, "step {step}: copy VTWork diverged");
        if step % 64 == 0 {
            for u in 0..THREADS {
                assert_eq!(
                    hc_threads[u].vector_time(),
                    tc_threads[u].vector_time(),
                    "step {step}: thread {u} diverged"
                );
            }
            assert_eq!(hc_lock.vector_time(), tc_lock.vector_time());
        }
    }
    // A dense single-lock run at 8 threads settles the hybrid flat.
    assert!(
        hc_threads.iter().any(|c| c.is_flat()),
        "the dense mixed run should have migrated some clocks"
    );
}

/// The sparse deep copy must charge work proportional to the information
/// transferred, not the thread dimension: a first copy from a clock that
/// knows 3 threads into an empty clock examines ~3 entries even when the
/// source's arrays are sized for 256 threads.
#[test]
fn tree_deep_copy_cost_is_sparse_in_present_entries() {
    const K: usize = 256;
    let mut src = TreeClock::with_threads(K);
    src.init_root(ThreadId::new(0));
    src.increment(4);
    for u in [7u32, 13] {
        let mut other = TreeClock::with_threads(K);
        other.init_root(ThreadId::new(u));
        other.increment(1);
        src.join(&other);
    }
    assert_eq!(src.node_count(), 3);

    let mut lw = TreeClock::new();
    let (mode, stats) = lw.copy_check_monotone_counted(&src);
    assert_eq!(mode, CopyMode::Monotone);
    assert!(
        stats.examined <= 2 * 3,
        "examined {} must scale with the 3 present entries, not k={K}",
        stats.examined
    );
    assert_eq!(stats.changed, 3, "all three known entries are news to lw");
    assert_eq!(lw.vector_time(), src.vector_time());
}
