//! Test-only fault injection.
//!
//! A [`Fault`] perturbs one engine's *results* after they are computed
//! (never the engines themselves), so the conformance checker observes
//! a mismatch exactly as it would for a real bug. This keeps the
//! harness honest: a checker that cannot see an injected fault would
//! also miss a genuine divergence, and the shrinker demo in the test
//! suite exercises the whole minimize-and-dump loop.

use std::fmt;
use std::str::FromStr;

use tc_orders::PartialOrderKind;

/// A result perturbation applied to the tree-clock side of one partial
/// order's checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fault {
    /// No perturbation: the honest conformance run.
    #[default]
    None,
    /// Drop the last reported race of the order's detector report
    /// (models a detector that misses a race).
    DropRace(PartialOrderKind),
    /// Bump one entry of the last event's timestamp (models a clock
    /// divergence).
    SkewTimestamp(PartialOrderKind),
    /// Inflate the tree-clock run's `op_changed` counter by one
    /// (models a metrics accounting bug breaking `VTWork` equality).
    InflateWork(PartialOrderKind),
}

impl Fault {
    /// The order whose checks this fault perturbs, if any.
    pub fn order(self) -> Option<PartialOrderKind> {
        match self {
            Fault::None => None,
            Fault::DropRace(k) | Fault::SkewTimestamp(k) | Fault::InflateWork(k) => Some(k),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::None => f.write_str("none"),
            Fault::DropRace(k) => write!(f, "drop-race:{}", k.to_string().to_lowercase()),
            Fault::SkewTimestamp(k) => {
                write!(f, "skew-timestamp:{}", k.to_string().to_lowercase())
            }
            Fault::InflateWork(k) => write!(f, "inflate-work:{}", k.to_string().to_lowercase()),
        }
    }
}

impl FromStr for Fault {
    type Err = String;

    /// Parses `none` or `<kind>:<order>`, e.g. `drop-race:hb`,
    /// `skew-timestamp:maz`, `inflate-work:shb`. The order defaults to
    /// `hb` when omitted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "none" {
            return Ok(Fault::None);
        }
        let (kind, order) = match s.split_once(':') {
            Some((k, o)) => (k, o.parse::<PartialOrderKind>()?),
            None => (s, PartialOrderKind::Hb),
        };
        match kind {
            "drop-race" => Ok(Fault::DropRace(order)),
            "skew-timestamp" => Ok(Fault::SkewTimestamp(order)),
            "inflate-work" => Ok(Fault::InflateWork(order)),
            other => Err(format!(
                "unknown fault `{other}` (none, drop-race, skew-timestamp, inflate-work; \
                 optionally suffixed `:hb|:shb|:maz`)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_round_trip_through_strings() {
        let faults = [
            Fault::None,
            Fault::DropRace(PartialOrderKind::Hb),
            Fault::SkewTimestamp(PartialOrderKind::Shb),
            Fault::InflateWork(PartialOrderKind::Maz),
        ];
        for fault in faults {
            let parsed: Fault = fault.to_string().parse().unwrap();
            assert_eq!(parsed, fault);
        }
    }

    #[test]
    fn order_defaults_to_hb() {
        assert_eq!(
            "drop-race".parse::<Fault>().unwrap(),
            Fault::DropRace(PartialOrderKind::Hb)
        );
    }

    #[test]
    fn unknown_faults_are_rejected() {
        assert!("explode".parse::<Fault>().is_err());
        assert!("drop-race:cp".parse::<Fault>().is_err());
    }
}
