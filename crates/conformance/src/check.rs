//! The cross-engine conformance checker for a single trace.
//!
//! For each partial order (HB, SHB, MAZ) the checker runs the streaming
//! engine with all three clock backends (tree, vector, and the adaptive
//! flat/tree hybrid), the epoch-optimized detector with each backend,
//! and the O(n²) definitional oracle, then cross-checks timestamps,
//! reports and work metrics. Any mismatch is returned as a structured
//! [`Failure`] naming the order, the check and the first divergence.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use tc_analysis::{HbRaceDetector, MazAnalyzer, RaceReport, ShbRaceDetector};
use tc_core::{ClockPool, Epoch, HybridClock, TreeClock, VectorClock, VectorTime};
use tc_orders::spec::{spec_dag, spec_dag_with, SpecOptions};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, RunMetrics, ShbEngine};
use tc_trace::Trace;

use crate::fault::Fault;

/// Number of clock backends every check runs (tree, vector, hybrid).
pub const BACKENDS: usize = 3;

/// Stable backend labels, in the order the per-backend check results
/// are produced.
pub const BACKEND_NAMES: [&str; BACKENDS] = ["tree", "vector", "hybrid"];

/// Clock pools for all three backends, shared across every engine a
/// conformance check constructs (27 engine/detector instances per
/// trace) and, via [`check_trace_pooled`], across the cases of a sweep —
/// so everything after the very first case runs allocation-free.
#[derive(Debug, Default)]
pub struct EnginePools {
    tree: ClockPool<TreeClock>,
    vector: ClockPool<VectorClock>,
    hybrid: ClockPool<HybridClock>,
    /// The epoch-worker pool the parallel check scatters shards onto,
    /// spawned lazily on the first parallel check and reused for every
    /// remaining case of the sweep.
    epoch_workers: Option<Arc<tc_stream::EpochPool>>,
}

impl EnginePools {
    /// Creates a set of empty pools.
    pub fn new() -> Self {
        EnginePools::default()
    }

    fn epoch_workers(&mut self) -> Arc<tc_stream::EpochPool> {
        Arc::clone(
            self.epoch_workers
                .get_or_insert_with(|| Arc::new(tc_stream::EpochPool::new(2))),
        )
    }
}

/// Which family of checks a failure came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// Engine timestamps vs the definitional oracle (Lemma 4).
    Timestamps,
    /// Detector reports: backend equality, soundness, HB completeness.
    Reports,
    /// Work metrics: `VTWork` independence, Theorem 1, `OpStats` sanity.
    Metrics,
    /// Streaming-vs-batch equivalence: the incremental detector's
    /// per-event timestamps and reports, including across a mid-stream
    /// checkpoint/restore (and with eviction on fork-disciplined
    /// traces).
    Streaming,
    /// Wire-protocol equivalence: a session fed frame-batched binary
    /// events (the `tcr serve` binary ingest path) must produce a
    /// report event-identical to the batch detector's.
    Wire,
    /// Epoch-parallel equivalence: a [`ParallelDetector`] fed the trace
    /// in frames — shards fanned across a shared worker pool — must
    /// produce per-event timestamps and a report identical to the
    /// sequential detector's, for every backend.
    ///
    /// [`ParallelDetector`]: tc_stream::ParallelDetector
    Parallel,
    /// Identity-recycling equivalence: a streaming detector with
    /// generation-based slot recycling enabled must produce per-event
    /// external-coordinate timestamps and a report identical to the
    /// batch detector's, including across a mid-stream
    /// checkpoint/restore that serializes the identity map. Runs on
    /// fork-disciplined traces (the discipline under which slot
    /// reclamation is value-preserving).
    Recycling,
    /// Cluster equivalence: the trace frame-fed through a three-node
    /// in-process ring — gateway forwarding, checkpoint-delta
    /// replication, one induced owner crash at the midpoint — must
    /// serve a race report line-identical to an uninterrupted
    /// single-process session's, with a total matching the batch
    /// detector's.
    Cluster,
}

/// The check families every sweep case runs, in execution order
/// (per partial order; the backend fan-out happens inside each).
pub const CHECKS_PER_CASE: [CheckKind; 8] = [
    CheckKind::Timestamps,
    CheckKind::Reports,
    CheckKind::Metrics,
    CheckKind::Streaming,
    CheckKind::Wire,
    CheckKind::Parallel,
    CheckKind::Recycling,
    CheckKind::Cluster,
];

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckKind::Timestamps => "timestamps",
            CheckKind::Reports => "reports",
            CheckKind::Metrics => "metrics",
            CheckKind::Streaming => "streaming",
            CheckKind::Wire => "wire",
            CheckKind::Parallel => "parallel",
            CheckKind::Recycling => "recycling",
            CheckKind::Cluster => "cluster",
        })
    }
}

/// A conformance violation: the first divergence found for a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// The partial order whose checks diverged.
    pub order: PartialOrderKind,
    /// The check family that tripped.
    pub check: CheckKind,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}", self.order, self.check, self.detail)
    }
}

/// Aggregate numbers from one successful conformance check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Engine × backend combinations exercised (3 orders × 3 backends).
    pub combos: usize,
    /// Events in the checked trace.
    pub events: usize,
    /// Total races/reversible pairs reported across the three orders.
    pub races: u64,
    /// Recycling differential passes that actually ran (3 backends per
    /// fork-disciplined order; non-disciplined traces are skipped
    /// because the recycling guard rejects them by design).
    pub recycling_passes: usize,
}

fn fail(order: PartialOrderKind, check: CheckKind, detail: impl Into<String>) -> Failure {
    Failure {
        order,
        check,
        detail: detail.into(),
    }
}

/// Maps each event's `(tid, local time)` epoch to its trace index, the
/// inverse of the identification used by the detectors' reports.
fn epoch_index(trace: &Trace) -> HashMap<(u32, u32), usize> {
    let ltimes = trace.local_times();
    trace
        .iter()
        .enumerate()
        .map(|(i, e)| ((e.tid.raw(), ltimes[i]), i))
        .collect()
}

fn timestamps_of(
    trace: &Trace,
    kind: PartialOrderKind,
    pools: &mut EnginePools,
) -> [Vec<VectorTime>; BACKENDS] {
    let (t, v, h) = (&mut pools.tree, &mut pools.vector, &mut pools.hybrid);
    match kind {
        PartialOrderKind::Hb => [
            HbEngine::<TreeClock>::collect_timestamps_pooled(trace, t),
            HbEngine::<VectorClock>::collect_timestamps_pooled(trace, v),
            HbEngine::<HybridClock>::collect_timestamps_pooled(trace, h),
        ],
        PartialOrderKind::Shb => [
            ShbEngine::<TreeClock>::collect_timestamps_pooled(trace, t),
            ShbEngine::<VectorClock>::collect_timestamps_pooled(trace, v),
            ShbEngine::<HybridClock>::collect_timestamps_pooled(trace, h),
        ],
        PartialOrderKind::Maz => [
            MazEngine::<TreeClock>::collect_timestamps_pooled(trace, t),
            MazEngine::<VectorClock>::collect_timestamps_pooled(trace, v),
            MazEngine::<HybridClock>::collect_timestamps_pooled(trace, h),
        ],
    }
}

fn reports_of(
    trace: &Trace,
    kind: PartialOrderKind,
    pools: &mut EnginePools,
) -> [RaceReport; BACKENDS] {
    let (t, v, h) = (&mut pools.tree, &mut pools.vector, &mut pools.hybrid);
    match kind {
        PartialOrderKind::Hb => [
            HbRaceDetector::<TreeClock>::run_pooled(trace, t).1,
            HbRaceDetector::<VectorClock>::run_pooled(trace, v).1,
            HbRaceDetector::<HybridClock>::run_pooled(trace, h).1,
        ],
        PartialOrderKind::Shb => [
            ShbRaceDetector::<TreeClock>::run_pooled(trace, t).1,
            ShbRaceDetector::<VectorClock>::run_pooled(trace, v).1,
            ShbRaceDetector::<HybridClock>::run_pooled(trace, h).1,
        ],
        PartialOrderKind::Maz => [
            MazAnalyzer::<TreeClock>::run_pooled(trace, t).1,
            MazAnalyzer::<VectorClock>::run_pooled(trace, v).1,
            MazAnalyzer::<HybridClock>::run_pooled(trace, h).1,
        ],
    }
}

fn metrics_of(
    trace: &Trace,
    kind: PartialOrderKind,
    pools: &mut EnginePools,
) -> [RunMetrics; BACKENDS] {
    let (t, v, h) = (&mut pools.tree, &mut pools.vector, &mut pools.hybrid);
    match kind {
        PartialOrderKind::Hb => [
            HbEngine::<TreeClock>::run_counted_pooled(trace, t),
            HbEngine::<VectorClock>::run_counted_pooled(trace, v),
            HbEngine::<HybridClock>::run_counted_pooled(trace, h),
        ],
        PartialOrderKind::Shb => [
            ShbEngine::<TreeClock>::run_counted_pooled(trace, t),
            ShbEngine::<VectorClock>::run_counted_pooled(trace, v),
            ShbEngine::<HybridClock>::run_counted_pooled(trace, h),
        ],
        PartialOrderKind::Maz => [
            MazEngine::<TreeClock>::run_counted_pooled(trace, t),
            MazEngine::<VectorClock>::run_counted_pooled(trace, v),
            MazEngine::<HybridClock>::run_counted_pooled(trace, h),
        ],
    }
}

fn check_timestamps(
    trace: &Trace,
    kind: PartialOrderKind,
    fault: Fault,
    pools: &mut EnginePools,
) -> Result<(), Failure> {
    let [mut tc, vc, hc] = timestamps_of(trace, kind, pools);
    if fault == Fault::SkewTimestamp(kind) {
        if let (Some(ts), Some(e)) = (tc.last_mut(), trace.events().last()) {
            ts.increment(e.tid, 1);
        }
    }
    let oracle = tc_orders::spec::spec_timestamps(trace, kind);
    for (backend, computed) in [("tree", &tc), ("vector", &vc), ("hybrid", &hc)] {
        if computed.len() != oracle.len() {
            return Err(fail(
                kind,
                CheckKind::Timestamps,
                format!(
                    "{backend} produced {} timestamps for {} events",
                    computed.len(),
                    oracle.len()
                ),
            ));
        }
        for (i, (got, want)) in computed.iter().zip(&oracle).enumerate() {
            if got != want {
                return Err(fail(
                    kind,
                    CheckKind::Timestamps,
                    format!(
                        "{backend} clock diverges from the definition at event {i} \
                         ({}): got {got}, oracle says {want}",
                        trace[i]
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Checks one report for soundness against the definitional order: each
/// reported pair must be conflicting and concurrent, judging SHB/MAZ
/// concurrency with the current event's own direct conflict edges
/// removed (the ordering the detector consulted).
fn check_report_soundness(
    trace: &Trace,
    kind: PartialOrderKind,
    report: &RaceReport,
    hb_reachability: Option<&tc_orders::Reachability>,
) -> Result<(), Failure> {
    if report.races.is_empty() {
        return Ok(());
    }
    let map = epoch_index(trace);
    let resolve = |e: Epoch| -> Option<usize> { map.get(&(e.tid().raw(), e.time())).copied() };
    for race in &report.races {
        let (Some(i), Some(j)) = (resolve(race.prior), resolve(race.current)) else {
            return Err(fail(
                kind,
                CheckKind::Reports,
                format!("reported pair {race} does not identify trace events"),
            ));
        };
        if i >= j {
            return Err(fail(
                kind,
                CheckKind::Reports,
                format!("reported pair {race} is not in trace order ({i} vs {j})"),
            ));
        }
        if !trace[i].conflicts_with(&trace[j]) {
            return Err(fail(
                kind,
                CheckKind::Reports,
                format!(
                    "reported pair ({i},{j}) does not conflict: {} vs {}",
                    trace[i], trace[j]
                ),
            ));
        }
        let concurrent = if kind == PartialOrderKind::Hb {
            // HB judges every pair against the one plain reachability
            // (shared with the completeness check); SHB/MAZ instead
            // rebuild a dropped-edge DAG per reported pair below.
            hb_reachability
                .expect("HB soundness requires the shared reachability")
                .concurrent(i, j)
        } else {
            let dropped = spec_dag_with(
                trace,
                kind,
                SpecOptions {
                    drop_conflict_edges_into: Some(j),
                },
            )
            .reachability();
            !dropped.ordered(i, j)
        };
        if !concurrent {
            return Err(fail(
                kind,
                CheckKind::Reports,
                format!(
                    "reported pair ({i},{j}) is ordered by the definition: {} vs {}",
                    trace[i], trace[j]
                ),
            ));
        }
    }
    Ok(())
}

fn check_reports(
    trace: &Trace,
    kind: PartialOrderKind,
    fault: Fault,
    pools: &mut EnginePools,
) -> Result<(u64, [RaceReport; BACKENDS]), Failure> {
    let [mut tc, vc, hc] = reports_of(trace, kind, pools);
    if fault == Fault::DropRace(kind) && tc.races.pop().is_some() {
        tc.total -= 1;
    }
    for (backend, other) in [("vector", &vc), ("hybrid", &hc)] {
        if tc != *other {
            return Err(fail(
                kind,
                CheckKind::Reports,
                format!(
                    "backends disagree: tree reports {} race(s) over {} check(s), \
                     {backend} reports {} over {}",
                    tc.total, tc.checks, other.total, other.checks
                ),
            ));
        }
    }
    if kind == PartialOrderKind::Hb {
        // The completeness check needs the plain HB reachability even
        // when no race was reported; soundness reuses the same one.
        let reach = spec_dag(trace, kind).reachability();
        check_report_soundness(trace, kind, &tc, Some(&reach))?;
        // Completeness: the FastTrack-style detector finds at least one
        // race exactly when a concurrent conflicting pair exists.
        let oracle_pairs = reach.concurrent_conflicting_pairs(trace);
        if tc.is_empty() != oracle_pairs.is_empty() {
            return Err(fail(
                kind,
                CheckKind::Reports,
                format!(
                    "HB detector nonemptiness must match the oracle: detector \
                     reported {}, oracle found {} concurrent conflicting pair(s)",
                    tc.total,
                    oracle_pairs.len()
                ),
            ));
        }
    } else {
        check_report_soundness(trace, kind, &tc, None)?;
    }
    let total = tc.total;
    Ok((total, [tc, vc, hc]))
}

fn check_metrics(
    trace: &Trace,
    kind: PartialOrderKind,
    fault: Fault,
    pools: &mut EnginePools,
) -> Result<(), Failure> {
    let [mut tc, vc, hc] = metrics_of(trace, kind, pools);
    if fault == Fault::InflateWork(kind) {
        tc.op_changed += 1;
    }
    for (backend, m) in [("tree", &tc), ("vector", &vc), ("hybrid", &hc)] {
        if m.events != trace.len() as u64 {
            return Err(fail(
                kind,
                CheckKind::Metrics,
                format!(
                    "{backend} engine processed {} events, trace has {}",
                    m.events,
                    trace.len()
                ),
            ));
        }
        if m.op_changed > m.op_examined {
            return Err(fail(
                kind,
                CheckKind::Metrics,
                format!(
                    "{backend} OpStats are inconsistent: changed {} > examined {}",
                    m.op_changed, m.op_examined
                ),
            ));
        }
    }
    for (backend, m) in [("vector", &vc), ("hybrid", &hc)] {
        if tc.vt_work() != m.vt_work() {
            return Err(fail(
                kind,
                CheckKind::Metrics,
                format!(
                    "VTWork must be representation independent: tree {} vs {backend} {}",
                    tc.vt_work(),
                    m.vt_work()
                ),
            ));
        }
    }
    // Theorem 1, with the paper's plain bound, for *all three* orders:
    // tree-clock work stays within 3× of the representation-independent
    // lower bound on every input. The per-variable clocks of SHB/MAZ
    // (`LW_x`, `R_{t,x}`) are lazy and their first copy is sparse —
    // charged per present entry, not per dimension — so the per-copy
    // Θ(k) surcharge this check used to grant (a known bug in the cost
    // model, found by short 16-thread pipeline/bursty corpus traces) is
    // gone. The bound applies to the *tree* backend only: it is a
    // property of Algorithm 2, which the counted tree paths run
    // verbatim; the hybrid's flat regime intentionally trades examined
    // entries for vectorizability and is checked for value equality and
    // VTWork independence instead.
    if tc.ds_work() > 3 * tc.vt_work() {
        return Err(fail(
            kind,
            CheckKind::Metrics,
            format!(
                "Theorem 1 violated: TCWork {} > 3·VTWork {}",
                tc.ds_work(),
                tc.vt_work()
            ),
        ));
    }
    Ok(())
}

/// Streams `trace` through an [`IncrementalDetector`] with a
/// checkpoint/restore at the midpoint and compares per-event
/// timestamps and the final report against the batch results.
///
/// [`IncrementalDetector`]: tc_stream::IncrementalDetector
fn stream_one_backend<C: tc_core::LogicalClock>(
    trace: &Trace,
    kind: PartialOrderKind,
    backend: &str,
    batch_ts: &[VectorTime],
    batch_report: &RaceReport,
    pool: &mut ClockPool<C>,
    evict: bool,
) -> Result<(), Failure> {
    use tc_stream::{Checkpoint, DetectorConfig, IncrementalDetector};
    let config = DetectorConfig {
        order: kind,
        retire_on_join: true,
        evict_every: if evict { Some(8) } else { None },
        recycle_slots: false,
    };
    let mut d = IncrementalDetector::<C>::with_pool(config, std::mem::take(pool));
    let half = trace.len() / 2;
    for (i, e) in trace.iter().enumerate() {
        if i == half {
            // Mid-stream checkpoint: serialize, reload, resume.
            let bytes = d.checkpoint().to_bytes();
            let cp = Checkpoint::from_bytes(&bytes).map_err(|err| {
                fail(
                    kind,
                    CheckKind::Streaming,
                    format!("{backend} checkpoint does not round trip at event {i}: {err}"),
                )
            })?;
            d = IncrementalDetector::from_checkpoint(&cp, d.into_pool());
        }
        d.feed(e).map_err(|err| {
            fail(
                kind,
                CheckKind::Streaming,
                format!(
                    "{backend} incremental feed rejected event {i} ({}): {err}",
                    trace[i]
                ),
            )
        })?;
        let got = d.timestamp_of(e.tid);
        if got != batch_ts[i] {
            *pool = d.into_pool();
            return Err(fail(
                kind,
                CheckKind::Streaming,
                format!(
                    "{backend} streaming timestamp diverges from batch at event {i} \
                     ({}): got {got}, batch {}{}",
                    trace[i],
                    batch_ts[i],
                    if evict { " (eviction enabled)" } else { "" },
                ),
            ));
        }
    }
    let result = if *d.report() != *batch_report {
        Err(fail(
            kind,
            CheckKind::Streaming,
            format!(
                "{backend} streaming report diverges from batch: {} vs {} race(s) \
                 over {} vs {} check(s){}",
                d.report().total,
                batch_report.total,
                d.report().checks,
                batch_report.checks,
                if evict { " (eviction enabled)" } else { "" },
            ),
        ))
    } else {
        Ok(())
    };
    *pool = d.into_pool();
    result
}

/// `true` when every thread that acts is fork-targeted before its
/// first own event, except the thread of the first event — the
/// discipline under which dominance eviction is value-preserving.
fn fork_disciplined(trace: &Trace) -> bool {
    let mut forked = vec![false; trace.thread_count()];
    let mut started = vec![false; trace.thread_count()];
    let mut first: Option<tc_core::ThreadId> = None;
    for e in trace {
        if first.is_none() {
            first = Some(e.tid);
        }
        if !started[e.tid.index()] && !forked[e.tid.index()] && first != Some(e.tid) {
            return false;
        }
        started[e.tid.index()] = true;
        if let tc_trace::Op::Fork(u) = e.op {
            forked[u.index()] = true;
        }
    }
    true
}

fn check_streaming(
    trace: &Trace,
    kind: PartialOrderKind,
    pools: &mut EnginePools,
) -> Result<(), Failure> {
    let [ts_tc, ts_vc, ts_hc] = timestamps_of(trace, kind, pools);
    let [rep_tc, rep_vc, rep_hc] = reports_of(trace, kind, pools);
    stream_one_backend::<TreeClock>(trace, kind, "tree", &ts_tc, &rep_tc, &mut pools.tree, false)?;
    stream_one_backend::<VectorClock>(
        trace,
        kind,
        "vector",
        &ts_vc,
        &rep_vc,
        &mut pools.vector,
        false,
    )?;
    stream_one_backend::<HybridClock>(
        trace,
        kind,
        "hybrid",
        &ts_hc,
        &rep_hc,
        &mut pools.hybrid,
        false,
    )?;
    // Dominance eviction is only value-preserving under fork
    // discipline; where the trace provides it, enforce equivalence
    // with eviction on too.
    if fork_disciplined(trace) {
        stream_one_backend::<TreeClock>(
            trace,
            kind,
            "tree",
            &ts_tc,
            &rep_tc,
            &mut pools.tree,
            true,
        )?;
    }
    Ok(())
}

/// Feeds `trace` through a recycling-enabled [`IncrementalDetector`] —
/// with a mid-stream checkpoint/restore exercising the serialized
/// identity map — and compares per-event external-coordinate
/// timestamps and the final report against the batch results. Slot
/// reuse must be invisible at the API: reports keep external thread
/// ids no matter how many generations a slot has served.
///
/// [`IncrementalDetector`]: tc_stream::IncrementalDetector
fn recycling_one_backend<C: tc_core::LogicalClock>(
    trace: &Trace,
    kind: PartialOrderKind,
    backend: &str,
    batch_ts: &[VectorTime],
    batch_report: &RaceReport,
    pool: &mut ClockPool<C>,
) -> Result<(), Failure> {
    use tc_stream::{Checkpoint, DetectorConfig, IncrementalDetector};
    let config = DetectorConfig {
        order: kind,
        retire_on_join: true,
        evict_every: None,
        recycle_slots: true,
    };
    let mut d = IncrementalDetector::<C>::with_pool(config, std::mem::take(pool));
    let half = trace.len() / 2;
    for (i, e) in trace.iter().enumerate() {
        if i == half {
            let bytes = d.checkpoint().to_bytes();
            let cp = Checkpoint::from_bytes(&bytes).map_err(|err| {
                fail(
                    kind,
                    CheckKind::Recycling,
                    format!(
                        "{backend} recycling checkpoint does not round trip at event {i}: {err}"
                    ),
                )
            })?;
            d = IncrementalDetector::from_checkpoint(&cp, d.into_pool());
        }
        d.feed(e).map_err(|err| {
            fail(
                kind,
                CheckKind::Recycling,
                format!(
                    "{backend} recycling feed rejected event {i} ({}): {err}",
                    trace[i]
                ),
            )
        })?;
        let got = d.timestamp_of(e.tid);
        if got != batch_ts[i] {
            *pool = d.into_pool();
            return Err(fail(
                kind,
                CheckKind::Recycling,
                format!(
                    "{backend} recycling timestamp diverges from batch at event {i} \
                     ({}): got {got}, batch {}",
                    trace[i], batch_ts[i]
                ),
            ));
        }
    }
    let result = if *d.report() != *batch_report {
        let served = d.report().clone();
        Err(fail(
            kind,
            CheckKind::Recycling,
            format!(
                "{backend} recycling report diverges from batch: {} vs {} race(s) \
                 over {} vs {} check(s)",
                served.total, batch_report.total, served.checks, batch_report.checks
            ),
        ))
    } else {
        Ok(())
    };
    *pool = d.into_pool();
    result
}

fn check_recycling(
    trace: &Trace,
    kind: PartialOrderKind,
    pools: &mut EnginePools,
) -> Result<usize, Failure> {
    // Slot reclamation, like dominance eviction, is value-preserving
    // under fork discipline; the detector's own guard rejects
    // non-disciplined runs once recycling activates.
    if !fork_disciplined(trace) {
        return Ok(0);
    }
    let [ts_tc, ts_vc, ts_hc] = timestamps_of(trace, kind, pools);
    let [rep_tc, rep_vc, rep_hc] = reports_of(trace, kind, pools);
    recycling_one_backend::<TreeClock>(trace, kind, "tree", &ts_tc, &rep_tc, &mut pools.tree)?;
    recycling_one_backend::<VectorClock>(
        trace,
        kind,
        "vector",
        &ts_vc,
        &rep_vc,
        &mut pools.vector,
    )?;
    recycling_one_backend::<HybridClock>(
        trace,
        kind,
        "hybrid",
        &ts_hc,
        &rep_hc,
        &mut pools.hybrid,
    )?;
    Ok(BACKENDS)
}

/// Feeds `trace` through a [`ParallelDetector`] in frames of 64 with
/// the minimum parallel frame forced down to 2 (so even small corpus
/// cases exercise the epoch split) and compares every event's
/// timestamp plus the final report against the batch results.
///
/// [`ParallelDetector`]: tc_stream::ParallelDetector
fn parallel_one_backend<C: tc_core::LogicalClock + Send + 'static>(
    trace: &Trace,
    kind: PartialOrderKind,
    backend: &str,
    batch_ts: &[VectorTime],
    batch_report: &RaceReport,
    pool: &mut ClockPool<C>,
    workers: Arc<tc_stream::EpochPool>,
) -> Result<(), Failure> {
    use tc_stream::{DetectorConfig, IncrementalDetector, ParallelDetector};
    let config = DetectorConfig {
        order: kind,
        retire_on_join: true,
        evict_every: None,
        recycle_slots: false,
    };
    let inner = IncrementalDetector::<C>::with_pool(config, std::mem::take(pool));
    let mut d = ParallelDetector::from_detector(inner, workers, 2);
    let mut failure = None;
    let mut i = 0usize;
    'frames: for (f, frame) in trace.events().chunks(64).enumerate() {
        match d.feed_frame_traced(frame) {
            Err(err) => {
                failure = Some(fail(
                    kind,
                    CheckKind::Parallel,
                    format!("{backend} parallel feed rejected frame {f}: {err}"),
                ));
                break 'frames;
            }
            Ok((_races, stamps)) => {
                for (k, got) in stamps.iter().enumerate() {
                    if *got != batch_ts[i + k] {
                        failure = Some(fail(
                            kind,
                            CheckKind::Parallel,
                            format!(
                                "{backend} parallel timestamp diverges from batch at \
                                 event {} ({}): got {got}, batch {}",
                                i + k,
                                trace[i + k],
                                batch_ts[i + k]
                            ),
                        ));
                        break 'frames;
                    }
                }
            }
        }
        i += frame.len();
    }
    if failure.is_none() && *d.detector().report() != *batch_report {
        let served = d.detector().report();
        failure = Some(fail(
            kind,
            CheckKind::Parallel,
            format!(
                "{backend} parallel report diverges from batch: {} vs {} race(s) \
                 over {} vs {} check(s)",
                served.total, batch_report.total, served.checks, batch_report.checks
            ),
        ));
    }
    *pool = d.into_inner().into_pool();
    match failure {
        Some(f) => Err(f),
        None => Ok(()),
    }
}

fn check_parallel(
    trace: &Trace,
    kind: PartialOrderKind,
    pools: &mut EnginePools,
) -> Result<(), Failure> {
    let [ts_tc, ts_vc, ts_hc] = timestamps_of(trace, kind, pools);
    let [rep_tc, rep_vc, rep_hc] = reports_of(trace, kind, pools);
    let workers = pools.epoch_workers();
    parallel_one_backend::<TreeClock>(
        trace,
        kind,
        "tree",
        &ts_tc,
        &rep_tc,
        &mut pools.tree,
        Arc::clone(&workers),
    )?;
    parallel_one_backend::<VectorClock>(
        trace,
        kind,
        "vector",
        &ts_vc,
        &rep_vc,
        &mut pools.vector,
        Arc::clone(&workers),
    )?;
    parallel_one_backend::<HybridClock>(
        trace,
        kind,
        "hybrid",
        &ts_hc,
        &rep_hc,
        &mut pools.hybrid,
        workers,
    )?;
    Ok(())
}

/// Feeds `trace` into a protocol [`Session`] as frame-batched binary
/// events — the exact path `tcr serve` runs for binary clients — and
/// asserts the session's report is event-identical to the batch
/// detector's. The backend rotates with the order (HB→tree,
/// SHB→hybrid, MAZ→vector) so the sweep covers all three over its
/// case mix.
///
/// [`Session`]: tc_stream::Session
fn check_wire(
    trace: &Trace,
    kind: PartialOrderKind,
    batch: &RaceReport,
    backend: &str,
) -> Result<(), Failure> {
    use tc_stream::{ClockChoice, DetectorConfig, Session};
    let clock = match kind {
        PartialOrderKind::Hb => ClockChoice::Tree,
        PartialOrderKind::Shb => ClockChoice::Hybrid,
        PartialOrderKind::Maz => ClockChoice::Vector,
    };
    debug_assert_eq!(clock.name(), backend);
    let mut session = Session::new(0, clock, DetectorConfig::for_order(kind));
    let mut out = String::new();
    for (f, frame) in trace.events().chunks(64).enumerate() {
        session.handle_frame(frame, &mut out);
        if !out.is_empty() {
            return Err(fail(
                kind,
                CheckKind::Wire,
                format!("{backend} session rejected frame {f}: {}", out.trim_end()),
            ));
        }
    }
    let served = session.detector().report();
    if *served != *batch {
        return Err(fail(
            kind,
            CheckKind::Wire,
            format!(
                "{backend} frame-batched session diverges from batch: {} vs {} \
                 race(s) over {} vs {} check(s)",
                served.total, batch.total, served.checks, batch.checks
            ),
        ));
    }
    Ok(())
}

/// Runs the trace through a three-node in-process cluster ring —
/// frames forwarded through a gateway, checkpoint-delta replication to
/// the ring successor, one induced owner crash at the frame midpoint —
/// and asserts the race report the promoted replica serves is
/// line-identical to an uninterrupted single-process session's (which
/// [`check_wire`] has already tied to the batch detector), with a
/// total matching the batch report. The backend rotates with the
/// order exactly like the wire check.
fn check_cluster(trace: &Trace, kind: PartialOrderKind, batch: &RaceReport) -> Result<(), Failure> {
    use tc_cluster::LocalCluster;
    use tc_stream::{ClockChoice, DetectorConfig, Session};
    let (order_arg, clock_arg, clock) = match kind {
        PartialOrderKind::Hb => ("hb", "tc", ClockChoice::Tree),
        PartialOrderKind::Shb => ("shb", "hc", ClockChoice::Hybrid),
        PartialOrderKind::Maz => ("maz", "vc", ClockChoice::Vector),
    };
    // Ground truth: one uninterrupted session fed the same frames.
    let mut session = Session::new(0, clock, DetectorConfig::for_order(kind));
    let mut sink = String::new();
    for frame in trace.events().chunks(64) {
        sink.clear();
        session.handle_frame(frame, &mut sink);
        if !sink.is_empty() {
            return Err(fail(
                kind,
                CheckKind::Cluster,
                format!("reference session rejected a frame: {}", sink.trim_end()),
            ));
        }
    }
    let mut want = String::new();
    session.handle_line("races", &mut want);

    let mut ring = LocalCluster::with_delta_every(3, 2);
    let open = ring.client_line(0, 1, &format!("open {order_arg} {clock_arg}"));
    let id: u64 = match open
        .strip_prefix("ok session ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|v| v.parse().ok())
    {
        Some(id) => id,
        None => {
            return Err(fail(
                kind,
                CheckKind::Cluster,
                format!("cluster open failed: {}", open.trim_end()),
            ))
        }
    };
    let owner = ring.node_ref(0).place(id);
    let gateway = (0..3).find(|&n| n != owner).expect("two nodes survive");
    let frames: Vec<&[tc_trace::Event]> = trace.events().chunks(64).collect();
    let half = frames.len() / 2;
    for (f, frame) in frames.iter().enumerate() {
        if f == half {
            // Induce the failover: the owner dies mid-stream and the
            // replica resumes from its last delta plus the in-flight
            // payload tail.
            ring.tick();
            ring.kill(owner);
        }
        let (node, conn) = if f < half { (0, 1) } else { (gateway, 2) };
        let reply = ring.client_frame(node, conn, id, frame);
        if !reply.is_empty() {
            return Err(fail(
                kind,
                CheckKind::Cluster,
                format!("cluster rejected frame {f}: {}", reply.trim_end()),
            ));
        }
    }
    if half >= frames.len() {
        // Even a trace too short to split still exercises a failover.
        ring.tick();
        ring.kill(owner);
    }
    let bind = ring.client_line(gateway, 2, &format!("use {id}"));
    if !bind.starts_with("ok session") {
        return Err(fail(
            kind,
            CheckKind::Cluster,
            format!(
                "survivor gateway cannot bind the session: {}",
                bind.trim_end()
            ),
        ));
    }
    let got = ring.client_line(gateway, 2, "races");
    if got != want {
        return Err(fail(
            kind,
            CheckKind::Cluster,
            format!(
                "race report diverges after failover: {:?} vs {:?}",
                got.trim_end(),
                want.trim_end()
            ),
        ));
    }
    let total: Option<u64> = got
        .lines()
        .last()
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok());
    if total != Some(batch.total) {
        return Err(fail(
            kind,
            CheckKind::Cluster,
            format!(
                "served total {total:?} disagrees with the batch detector's {}",
                batch.total
            ),
        ));
    }
    Ok(())
}

/// Runs every conformance check on `trace`, perturbing one result
/// according to `fault` (pass [`Fault::None`] for an honest run).
///
/// # Errors
///
/// Returns the first [`Failure`] found, checking orders in the
/// HB, SHB, MAZ sequence and timestamps → reports → metrics within
/// each order.
pub fn check_trace(trace: &Trace, fault: Fault) -> Result<CheckSummary, Failure> {
    check_trace_pooled(trace, fault, &mut EnginePools::new())
}

/// [`check_trace`] with caller-provided clock pools, so a sweep over
/// many traces reuses every clock buffer from the second case on.
pub fn check_trace_pooled(
    trace: &Trace,
    fault: Fault,
    pools: &mut EnginePools,
) -> Result<CheckSummary, Failure> {
    let orders = [
        PartialOrderKind::Hb,
        PartialOrderKind::Shb,
        PartialOrderKind::Maz,
    ];
    let mut summary = CheckSummary {
        combos: orders.len() * BACKENDS,
        events: trace.len(),
        races: 0,
        recycling_passes: 0,
    };
    for kind in orders {
        check_timestamps(trace, kind, fault, pools)?;
        let (races, reports) = check_reports(trace, kind, fault, pools)?;
        summary.races += races;
        check_metrics(trace, kind, fault, pools)?;
        check_streaming(trace, kind, pools)?;
        // The backend rotation indexes into [tree, vector, hybrid].
        let (idx, backend) = match kind {
            PartialOrderKind::Hb => (0, "tree"),
            PartialOrderKind::Shb => (2, "hybrid"),
            PartialOrderKind::Maz => (1, "vector"),
        };
        check_wire(trace, kind, &reports[idx], backend)?;
        check_cluster(trace, kind, &reports[idx])?;
        check_parallel(trace, kind, pools)?;
        summary.recycling_passes += check_recycling(trace, kind, pools)?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::gen::{Scenario, WorkloadSpec};

    fn racy_trace() -> Trace {
        WorkloadSpec {
            threads: 4,
            locks: 2,
            vars: 3,
            events: 120,
            sync_ratio: 0.1,
            shared_fraction: 0.9,
            seed: 7,
            ..WorkloadSpec::default()
        }
        .generate()
    }

    #[test]
    fn honest_runs_pass_on_scenarios_and_racy_workloads() {
        let star = Scenario::Star.generate(4, 150, 1);
        assert!(check_trace(&star, Fault::None).is_ok());
        let racy = racy_trace();
        let summary = check_trace(&racy, Fault::None).unwrap();
        assert!(summary.races > 0, "racy workload should report races");
        assert_eq!(summary.combos, 9);
    }

    #[test]
    fn each_fault_kind_is_detected() {
        let racy = racy_trace();
        for kind in PartialOrderKind::ALL {
            for fault in [
                Fault::DropRace(kind),
                Fault::SkewTimestamp(kind),
                Fault::InflateWork(kind),
            ] {
                let failure = check_trace(&racy, fault)
                    .expect_err(&format!("fault {fault} must be detected"));
                assert_eq!(failure.order, kind, "fault {fault}");
            }
        }
    }

    #[test]
    fn fault_failures_name_the_right_check() {
        let racy = racy_trace();
        let f = check_trace(&racy, Fault::SkewTimestamp(PartialOrderKind::Hb)).unwrap_err();
        assert_eq!(f.check, CheckKind::Timestamps);
        let f = check_trace(&racy, Fault::DropRace(PartialOrderKind::Shb)).unwrap_err();
        assert_eq!(f.check, CheckKind::Reports);
        let f = check_trace(&racy, Fault::InflateWork(PartialOrderKind::Maz)).unwrap_err();
        assert_eq!(f.check, CheckKind::Metrics);
        assert!(f.to_string().contains("MAZ/metrics"));
    }

    #[test]
    fn recycling_differential_pass_runs_and_actually_recycles_on_churn() {
        use tc_stream::{DetectorConfig, IncrementalDetector};
        let trace = Scenario::SpawnJoinChurn.generate(12, 300, 9);
        assert!(
            fork_disciplined(&trace),
            "churn must be fork-disciplined so the recycling pass is not skipped"
        );
        let mut pools = EnginePools::new();
        check_trace_pooled(&trace, Fault::None, &mut pools)
            .unwrap_or_else(|f| panic!("churn conformance failed: {f}"));
        // The differential is only meaningful if slot reuse actually
        // happens on this corpus shape; pin that directly.
        let config = DetectorConfig {
            recycle_slots: true,
            ..DetectorConfig::default()
        };
        let mut d = IncrementalDetector::<TreeClock>::new(config);
        for e in &trace {
            d.feed(e).unwrap();
        }
        assert!(d.recycled_slots() > 0, "churn case never reused a slot");
        assert!(
            d.slot_width() < trace.thread_count(),
            "slot width {} should stay below the {} externals",
            d.slot_width(),
            trace.thread_count()
        );
    }

    #[test]
    fn short_16_thread_pipeline_and_bursty_traces_meet_the_plain_bound() {
        // Regression for the removed per-copy dimension surcharge: short
        // 16-thread pipeline/bursty traces were exactly the cases where
        // dense first copies into per-variable clocks blew past
        // 3·VTWork. With lazy, sparsely-copied clocks they must pass the
        // paper's unmodified Theorem 1 bound.
        let mut pools = EnginePools::new();
        for scenario in [Scenario::Pipeline, Scenario::BurstyChannels] {
            for events in [40, 100, 250] {
                let trace = scenario.generate(16, events, 11);
                check_trace_pooled(&trace, Fault::None, &mut pools).unwrap_or_else(|f| {
                    panic!("{scenario}/{events} events failed the plain 3× bound: {f}")
                });
            }
        }
    }

    #[test]
    fn parallel_check_matches_sequential_on_a_multi_epoch_workload() {
        // The racy workload's threads split across several epochs in
        // most frames; the parallel pass must agree with the batch
        // run for every order and backend (check_parallel fans all
        // three backends internally).
        let mut pools = EnginePools::new();
        let trace = racy_trace();
        for kind in PartialOrderKind::ALL {
            check_parallel(&trace, kind, &mut pools)
                .unwrap_or_else(|f| panic!("parallel check failed for {kind}: {f}"));
        }
    }

    #[test]
    fn fork_discipline_is_detected() {
        use tc_trace::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.fork(0, 1).write(1, "x").join(0, 1);
        assert!(fork_disciplined(&b.finish()));
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x"); // t1 is spontaneous
        assert!(!fork_disciplined(&b.finish()));
        // The fork-join-tree family is disciplined by construction, so
        // the sweep's eviction pass actually runs on it.
        assert!(fork_disciplined(
            &Scenario::ForkJoinTree.generate(8, 200, 1)
        ));
    }

    #[test]
    fn empty_trace_is_trivially_conformant() {
        let summary = check_trace(&Trace::new(), Fault::None).unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.races, 0);
    }
}
