//! The conformance corpus: a registry of (source × threads ×
//! event-count × seed) trace configurations.
//!
//! Two standard corpora are provided: [`Corpus::quick`] — small traces
//! sized so the O(n²) definitional oracles stay cheap, run as part of
//! tier-1 `cargo test` — and [`Corpus::full`] — a broader sweep for the
//! `tcr conformance` command line.

use std::fmt;

use tc_trace::gen::{Scenario, WorkloadSpec};
use tc_trace::Trace;

/// Where a case's trace comes from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceSource {
    /// A registered structured scenario family (race-free by
    /// construction).
    Scenario(Scenario),
    /// A mixed random workload with the given sync percentage; low
    /// percentages produce heavily racy traces, exercising the race
    /// reporting and shrinking paths.
    Workload {
        /// Percentage of sync decisions (the `sync_ratio` knob × 100).
        sync_pct: u8,
        /// Size of the variable pool (small pools collide more).
        vars: u32,
    },
}

impl fmt::Display for TraceSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSource::Scenario(s) => write!(f, "{s}"),
            TraceSource::Workload { sync_pct, vars } => {
                write!(f, "workload-s{sync_pct}-v{vars}")
            }
        }
    }
}

/// One corpus entry: a fully determined trace configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CaseConfig {
    /// The trace source.
    pub source: TraceSource,
    /// Thread count.
    pub threads: u32,
    /// Approximate event budget.
    pub events: usize,
    /// Generator seed.
    pub seed: u64,
}

impl CaseConfig {
    /// Generates this configuration's trace (deterministic).
    pub fn generate(&self) -> Trace {
        match self.source {
            TraceSource::Scenario(s) => s.generate(self.threads, self.events, self.seed),
            TraceSource::Workload { sync_pct, vars } => WorkloadSpec {
                threads: self.threads,
                locks: 2,
                vars,
                events: self.events,
                sync_ratio: f64::from(sync_pct) / 100.0,
                write_ratio: 0.45,
                shared_fraction: 0.8,
                seed: self.seed,
                ..WorkloadSpec::default()
            }
            .generate(),
        }
    }
}

impl fmt::Display for CaseConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/k{}/n{}/s{}",
            self.source, self.threads, self.events, self.seed
        )
    }
}

/// A registry of conformance cases.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// The registered cases, in deterministic order.
    pub cases: Vec<CaseConfig>,
}

impl Corpus {
    /// The tier-1 corpus: every scenario family at two shapes plus six
    /// racy workloads, small enough that the full sweep (including the
    /// O(n²) oracles) finishes in seconds.
    pub fn quick() -> Corpus {
        let mut cases = Vec::new();
        for (i, s) in Scenario::ALL.into_iter().enumerate() {
            let seed = 100 + i as u64;
            cases.push(CaseConfig {
                source: TraceSource::Scenario(s),
                threads: s.min_threads().max(3),
                events: 140,
                seed,
            });
            cases.push(CaseConfig {
                source: TraceSource::Scenario(s),
                threads: 6,
                events: 200,
                seed: seed + 1,
            });
        }
        for (i, (sync_pct, vars, threads)) in [
            (0u8, 3u32, 3u32),
            (0, 2, 5),
            (10, 3, 4),
            (25, 4, 4),
            (45, 3, 6),
            (70, 2, 3),
        ]
        .into_iter()
        .enumerate()
        {
            cases.push(CaseConfig {
                source: TraceSource::Workload { sync_pct, vars },
                threads,
                events: 150,
                seed: 200 + i as u64,
            });
        }
        Corpus { cases }
    }

    /// The broader command-line corpus: more thread counts, longer
    /// traces and more seeds per configuration (still oracle-friendly).
    pub fn full() -> Corpus {
        let mut cases = Vec::new();
        for (i, s) in Scenario::ALL.into_iter().enumerate() {
            for threads in [s.min_threads().max(2), 4, 8, 16] {
                for (j, events) in [150usize, 400].into_iter().enumerate() {
                    cases.push(CaseConfig {
                        source: TraceSource::Scenario(s),
                        threads,
                        events,
                        seed: 1_000 + 10 * i as u64 + j as u64,
                    });
                }
            }
        }
        for sync_pct in [0u8, 5, 15, 30, 50, 80] {
            for threads in [2u32, 4, 8] {
                cases.push(CaseConfig {
                    source: TraceSource::Workload { sync_pct, vars: 4 },
                    threads,
                    events: 300,
                    seed: 2_000 + u64::from(sync_pct) + u64::from(threads),
                });
            }
        }
        Corpus { cases }
    }

    /// Restricts the corpus to cases whose label contains `needle`.
    pub fn filter(mut self, needle: &str) -> Corpus {
        self.cases.retain(|c| c.to_string().contains(needle));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_covers_every_scenario_family() {
        let corpus = Corpus::quick();
        for s in Scenario::ALL {
            assert!(
                corpus
                    .cases
                    .iter()
                    .any(|c| c.source == TraceSource::Scenario(s)),
                "{s} missing from the quick corpus"
            );
        }
        assert!(corpus
            .cases
            .iter()
            .any(|c| matches!(c.source, TraceSource::Workload { sync_pct: 0, .. })));
    }

    #[test]
    fn every_quick_case_generates_a_valid_trace() {
        for case in Corpus::quick().cases {
            let t = case.generate();
            t.validate()
                .unwrap_or_else(|e| panic!("{case}: invalid trace: {e}"));
            assert_eq!(t.thread_count(), case.threads as usize, "{case}");
            assert!(t.len() >= case.events, "{case}: undershot");
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let corpus = Corpus::quick();
        let case = corpus.cases[0];
        assert_eq!(case.generate().events(), case.generate().events());
    }

    #[test]
    fn filter_narrows_by_label() {
        let corpus = Corpus::full().filter("star");
        assert!(!corpus.cases.is_empty());
        assert!(corpus.cases.iter().all(|c| c.to_string().contains("star")));
    }

    #[test]
    fn labels_are_unique() {
        for corpus in [Corpus::quick(), Corpus::full()] {
            let mut labels: Vec<String> = corpus.cases.iter().map(|c| c.to_string()).collect();
            let n = labels.len();
            labels.sort();
            labels.dedup();
            assert_eq!(labels.len(), n, "duplicate corpus labels");
        }
    }
}
