//! The sweep driver: run every corpus case through the checker,
//! shrinking and collecting repros for failures.

use std::fmt;

use crate::check::{check_trace_pooled, CheckSummary, EnginePools, Failure};
use crate::corpus::{CaseConfig, Corpus};
use crate::fault::Fault;
use crate::shrink::{minimize, Repro};

/// Options for [`run_sweep`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOptions {
    /// Fault to inject into every case (test/demo only).
    pub fault: Fault,
    /// Minimize failing cases and attach a [`Repro`] (slower on
    /// failure, free when everything passes).
    pub shrink: bool,
}

/// The outcome of one corpus case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// The case configuration.
    pub config: CaseConfig,
    /// Summary on success, failure (plus optional repro) otherwise.
    pub result: Result<CheckSummary, (Failure, Option<Repro>)>,
}

impl fmt::Display for CaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.result {
            Ok(s) => write!(
                f,
                "ok   {} ({} events, {} report(s))",
                self.config, s.events, s.races
            ),
            Err((failure, repro)) => {
                write!(f, "FAIL {}: {failure}", self.config)?;
                if let Some(r) = repro {
                    write!(
                        f,
                        " (minimized {} -> {} events)",
                        r.original_events,
                        r.trace.len()
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// Aggregate results of a conformance sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Per-case outcomes, in corpus order.
    pub outcomes: Vec<CaseOutcome>,
}

impl SweepReport {
    /// Returns `true` when every case passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Number of failing cases.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// Total engine × backend combinations exercised across all cases
    /// (each case drives 3 orders × 3 backends; failing cases count
    /// from their configuration).
    pub fn combos(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| match &o.result {
                Ok(s) => s.combos,
                Err(_) => 3 * crate::check::BACKENDS,
            })
            .sum()
    }

    /// Total events checked across passing cases.
    pub fn events_checked(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|s| s.events))
            .sum()
    }

    /// Total recycling differential passes that ran across passing
    /// cases (0 would mean the whole corpus dodged the recycling-on
    /// vs recycling-off comparison — CI asserts this stays positive).
    pub fn recycling_passes(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|s| s.recycling_passes))
            .sum()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} case(s), {} engine×backend combination(s), {} event(s) checked, \
             {} recycling differential pass(es), {} failure(s)",
            self.outcomes.len(),
            self.combos(),
            self.events_checked(),
            self.recycling_passes(),
            self.failures()
        )
    }
}

/// Runs the conformance checker over every case of `corpus`.
///
/// All cases share one pair of clock pools, so every case after the
/// first checks allocation-free (modulo growth to a larger dimension).
pub fn run_sweep(corpus: &Corpus, options: SweepOptions) -> SweepReport {
    let mut report = SweepReport::default();
    let mut pools = EnginePools::new();
    for &config in &corpus.cases {
        let trace = config.generate();
        let result = match check_trace_pooled(&trace, options.fault, &mut pools) {
            Ok(summary) => Ok(summary),
            Err(failure) => {
                let repro = if options.shrink {
                    minimize(&trace, options.fault)
                } else {
                    None
                };
                Err((failure, repro))
            }
        };
        report.outcomes.push(CaseOutcome { config, result });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_orders::PartialOrderKind;

    fn tiny_corpus() -> Corpus {
        // A fast slice that still carries a fork-disciplined family, so
        // the recycling differential runs at least once.
        let mut corpus = Corpus::quick();
        corpus.cases.truncate(2);
        let churn = Corpus::quick().filter("spawn-join-churn");
        corpus.cases.extend(churn.cases.into_iter().take(2));
        corpus
    }

    #[test]
    fn honest_sweep_passes() {
        let report = run_sweep(&tiny_corpus(), SweepOptions::default());
        assert!(report.passed(), "{report}");
        assert_eq!(report.failures(), 0);
        assert_eq!(report.combos(), 4 * 9);
        assert!(report.events_checked() > 0);
        assert!(
            report.recycling_passes() > 0,
            "quick corpus must exercise the recycling differential"
        );
    }

    #[test]
    fn faulty_sweep_fails_and_shrinks() {
        // Use a racy corpus slice so the HB drop-race fault actually
        // bites (race-free scenario cases cannot lose a race).
        let corpus = Corpus::quick().filter("workload-s0");
        assert!(!corpus.cases.is_empty());
        let report = run_sweep(
            &corpus,
            SweepOptions {
                fault: Fault::DropRace(PartialOrderKind::Hb),
                shrink: true,
            },
        );
        assert!(!report.passed());
        let Err((failure, Some(repro))) = &report.outcomes[0].result else {
            panic!("expected a shrunk failure, got {}", report.outcomes[0]);
        };
        assert_eq!(failure.order, PartialOrderKind::Hb);
        assert!(repro.trace.len() <= 4, "repro not minimal: {}", repro.text);
        let line = report.outcomes[0].to_string();
        assert!(line.starts_with("FAIL"));
        assert!(line.contains("minimized"));
    }
}
