//! Deterministic event-level failure shrinking.
//!
//! When a conformance check fails on a generated trace, the raw
//! counterexample is typically hundreds of events long. [`shrink_trace`]
//! minimizes it with a ddmin-style bisection: repeatedly delete chunks
//! of events (halving the chunk size down to single events) while the
//! candidate remains well-formed and the failure persists. The result
//! is dumped as a replayable text-format [`Repro`].

use tc_trace::text_format;
use tc_trace::{Event, Trace};

use crate::check::{check_trace, Failure};
use crate::fault::Fault;

fn rebuild(events: &[Event]) -> Trace {
    events.iter().copied().collect()
}

/// Minimizes `trace` while `still_fails` holds, by deterministic
/// event-level bisection.
///
/// Candidates that are not well-formed (deleting an acquire orphans its
/// release, deleting a fork orphans the child) are skipped, so the
/// result is always a valid trace on which `still_fails` returns
/// `true`. The result is 1-minimal up to well-formedness: no single
/// remaining event can be deleted without losing the failure or
/// validity.
///
/// # Example
///
/// ```rust
/// use tc_conformance::shrink_trace;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// for t in 0..4 {
///     b.acquire(t, "m").read(t, "x").release(t, "m");
/// }
/// b.write(0, "y").write(1, "y"); // the only conflicting pair
/// let trace = b.finish();
///
/// // Shrink towards "two unsynchronized writes": everything else goes.
/// let small = shrink_trace(&trace, |t| {
///     t.iter().filter(|e| matches!(e.op, tc_trace::Op::Write(_))).count() >= 2
/// });
/// assert_eq!(small.len(), 2);
/// ```
pub fn shrink_trace<F: FnMut(&Trace) -> bool>(trace: &Trace, mut still_fails: F) -> Trace {
    let mut current: Vec<Event> = trace.events().to_vec();
    debug_assert!(still_fails(&rebuild(&current)), "shrinking a passing trace");
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let end = (i + chunk).min(current.len());
            if end - i == current.len() {
                // Never propose the empty trace.
                i = end;
                continue;
            }
            let candidate: Vec<Event> = current[..i]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            let t = rebuild(&candidate);
            if t.validate().is_ok() && still_fails(&t) {
                current = candidate;
                removed_any = true;
                // The next chunk now starts at `i`; retry in place.
            } else {
                i = end;
            }
        }
        if removed_any {
            continue; // another pass at the same granularity
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    rebuild(&current)
}

/// A minimized, replayable counterexample.
#[derive(Clone, Debug)]
pub struct Repro {
    /// The conformance failure the original trace exhibited.
    pub failure: Failure,
    /// Event count of the original failing trace.
    pub original_events: usize,
    /// The minimized failing trace.
    pub trace: Trace,
    /// The minimized trace in the replayable text format, prefixed with
    /// `#` comment lines describing the failure.
    pub text: String,
}

/// Checks `trace` under `fault` and, if it fails, minimizes the
/// counterexample and renders a replayable text repro.
///
/// Returns `None` when the trace is conformant. The shrinking predicate
/// is "any conformance check still fails under `fault`", so the
/// minimized trace may exhibit a different (smaller) failure than the
/// original; the repro records the final one.
pub fn minimize(trace: &Trace, fault: Fault) -> Option<Repro> {
    check_trace(trace, fault).err()?;
    let minimized = shrink_trace(trace, |t| check_trace(t, fault).is_err());
    let failure =
        check_trace(&minimized, fault).expect_err("shrinking preserves failure by construction");
    let mut text = format!(
        "# conformance repro: {failure}\n# fault injected: {fault}\n# minimized from {} to {} event(s)\n",
        trace.len(),
        minimized.len()
    );
    text.push_str(&text_format::to_text(&minimized));
    Some(Repro {
        failure,
        original_events: trace.len(),
        trace: minimized,
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::gen::WorkloadSpec;
    use tc_trace::{Op, TraceBuilder};

    #[test]
    fn shrinking_respects_well_formedness() {
        // Predicate: at least one release event present. A bare release
        // is invalid, so the minimum valid witness is acquire+release.
        let mut b = TraceBuilder::new();
        for t in 0..6u32 {
            b.acquire(t, "m").write(t, "x").release(t, "m");
        }
        let small = shrink_trace(&b.finish(), |t| {
            t.iter().any(|e| matches!(e.op, Op::Release(_)))
        });
        assert_eq!(small.len(), 2);
        assert!(small.validate().is_ok());
        assert!(matches!(small[0].op, Op::Acquire(_)));
        assert!(matches!(small[1].op, Op::Release(_)));
    }

    #[test]
    fn shrinking_is_deterministic() {
        let trace = WorkloadSpec {
            threads: 4,
            vars: 3,
            events: 200,
            sync_ratio: 0.1,
            shared_fraction: 1.0,
            seed: 3,
            ..WorkloadSpec::default()
        }
        .generate();
        let pred = |t: &Trace| t.iter().filter(|e| e.op.is_access()).count() > 4;
        let a = shrink_trace(&trace, pred);
        let b = shrink_trace(&trace, pred);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn minimize_returns_none_for_conformant_traces() {
        let trace = tc_trace::gen::Scenario::SingleLock.generate(3, 60, 1);
        assert!(minimize(&trace, Fault::None).is_none());
    }

    #[test]
    fn repro_text_is_replayable() {
        let trace = WorkloadSpec {
            threads: 4,
            vars: 2,
            events: 150,
            sync_ratio: 0.05,
            shared_fraction: 1.0,
            seed: 11,
            ..WorkloadSpec::default()
        }
        .generate();
        let fault = Fault::DropRace(tc_orders::PartialOrderKind::Hb);
        let repro = minimize(&trace, fault).expect("fault must fail");
        assert!(repro.trace.len() < repro.original_events / 4);
        // The text dump parses back to a trace that still fails.
        let replayed = text_format::parse_text(&repro.text).unwrap();
        assert_eq!(replayed.len(), repro.trace.len());
        assert!(check_trace(&replayed, fault).is_err());
    }
}
