//! Cross-engine conformance harness: the workspace as one big
//! differential test rig.
//!
//! The paper's central claim is *equivalence at lower cost*: tree
//! clocks must compute exactly the same HB/SHB/MAZ orderings as vector
//! clocks on every input — and this repo's adaptive
//! [`HybridClock`](tc_core::HybridClock) must agree with both, whatever
//! representation its density window picked. This crate systematically
//! drives every engine × backend combination through a [`Corpus`] of
//! trace configurations (every registered
//! [`Scenario`](tc_trace::gen::Scenario) family plus racy mixed
//! workloads, crossed with thread counts, event budgets and seeds) and
//! cross-checks, per partial order:
//!
//! - **timestamps** — [`TreeClock`](tc_core::TreeClock),
//!   [`VectorClock`](tc_core::VectorClock) and
//!   [`HybridClock`](tc_core::HybridClock) engine runs against the
//!   O(n²) definitional oracle of [`tc_orders::spec`] (identical
//!   timestamp *values* from all three backends on every trace);
//! - **reports** — the epoch-optimized detectors of [`tc_analysis`]
//!   must produce byte-identical race/reversible-pair reports for every
//!   backend, every reported pair must be conflicting and concurrent
//!   in the definitional order (soundness), and the HB detector must
//!   find a race exactly when one exists (completeness);
//! - **metrics** — `VTWork` must be representation independent across
//!   all three backends, tree-clock work must respect the Theorem 1
//!   bound `TCWork ≤ 3·VTWork` (a property of Algorithm 2, which the
//!   counted tree paths run verbatim), and the
//!   [`OpStats`](tc_core::OpStats) aggregates must be internally
//!   consistent (`changed ≤ examined`).
//!
//! When any check fails, a deterministic event-level bisection
//! ([`shrink_trace`]) minimizes the trace while the failure persists
//! and dumps a replayable repro in the text trace format
//! ([`Repro`]). Test-only [`Fault`] injection demonstrates the whole
//! loop end to end and guards the harness itself against rot.
//!
//! The `tcr conformance` CLI subcommand exposes the same sweep on the
//! command line.
//!
//! # Example
//!
//! ```rust
//! use tc_conformance::{check_trace, Corpus, Fault};
//!
//! // A single trace through every engine × backend × oracle check:
//! let trace = tc_trace::gen::Scenario::Star.generate(4, 150, 1);
//! let summary = check_trace(&trace, Fault::None).expect("conformant");
//! assert_eq!(summary.combos, 9); // 3 orders × 3 backends
//!
//! // The quick corpus used by the tier-1 sweep:
//! assert!(Corpus::quick().cases.len() >= 20);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod corpus;
pub mod fault;
pub mod runner;
pub mod shrink;

pub use check::{
    check_trace, check_trace_pooled, CheckKind, CheckSummary, EnginePools, Failure, CHECKS_PER_CASE,
};
pub use corpus::{CaseConfig, Corpus, TraceSource};
pub use fault::Fault;
pub use runner::{run_sweep, CaseOutcome, SweepOptions, SweepReport};
pub use shrink::{minimize, shrink_trace, Repro};
