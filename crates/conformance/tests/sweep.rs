//! The tier-1 conformance sweep (the ISSUE 2 acceptance gate):
//!
//! - the quick corpus drives ≥ 40 (scenario × order × backend)
//!   combinations through the full differential checker and passes;
//! - an intentionally broken check (fault injection) is caught, and the
//!   shrinker produces a minimized, replayable text-format repro.

use tc_conformance::{
    check_trace, run_sweep, CheckKind, Corpus, Fault, Repro, SweepOptions, TraceSource,
    CHECKS_PER_CASE,
};
use tc_orders::PartialOrderKind;
use tc_trace::text_format;

#[test]
fn quick_corpus_sweep_is_conformant() {
    let corpus = Corpus::quick();
    let report = run_sweep(&corpus, SweepOptions::default());
    for outcome in &report.outcomes {
        assert!(outcome.result.is_ok(), "{outcome}");
    }
    assert!(report.passed());
    assert!(
        report.combos() >= 60,
        "quick sweep must cover at least 60 scenario × order × backend \
         combinations (hybrid included), got {}",
        report.combos()
    );
    // The sweep exercises both race-free structured scenarios and racy
    // workloads (otherwise the report checks would be vacuous).
    let races: u64 = report
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().ok().map(|s| s.races))
        .sum();
    assert!(races > 0, "corpus must include racy cases");
    let race_free = report.outcomes.iter().any(|o| {
        matches!(o.config.source, TraceSource::Scenario(_))
            && matches!(&o.result, Ok(s) if s.races == 0)
    });
    assert!(race_free, "corpus must include race-free scenario cases");
    // Every case of the sweep runs the epoch-parallel equivalence pass
    // (order × backend fan-out inside it) — the gate for the parallel
    // ingest path staying byte-identical to sequential detection.
    assert!(
        CHECKS_PER_CASE.contains(&CheckKind::Parallel),
        "the sweep must include the parallel check family"
    );
    // Likewise the cluster pass: every case rides through a three-node
    // ring with one induced failover and must match the batch report.
    assert!(
        CHECKS_PER_CASE.contains(&CheckKind::Cluster),
        "the sweep must include the cluster check family"
    );
}

/// Every fault kind, injected into every order, is (a) detected by the
/// sweep and (b) minimized by the shrinker into a replayable repro that
/// still fails.
#[test]
fn injected_faults_are_caught_and_shrunk_to_replayable_repros() {
    // A heavily racy slice of the corpus, so dropped races and skewed
    // clocks are observable for all three orders.
    let corpus = Corpus::quick().filter("workload-s0");
    assert!(corpus.cases.len() >= 2);

    for kind in PartialOrderKind::ALL {
        for fault in [
            Fault::DropRace(kind),
            Fault::SkewTimestamp(kind),
            Fault::InflateWork(kind),
        ] {
            let report = run_sweep(
                &corpus,
                SweepOptions {
                    fault,
                    shrink: true,
                },
            );
            assert!(
                !report.passed(),
                "fault {fault} went undetected by the sweep"
            );
            let Err((failure, Some(repro))) = &report.outcomes[0].result else {
                panic!("fault {fault}: expected a shrunk failure");
            };
            assert_eq!(failure.order, kind, "fault {fault}");
            assert_repro_is_minimal_and_replayable(repro, fault);
        }
    }
}

fn assert_repro_is_minimal_and_replayable(repro: &Repro, fault: Fault) {
    // Minimized: the bisection shrinker reduces the hundreds-of-events
    // counterexample to a handful of events.
    assert!(
        repro.trace.len() < repro.original_events / 4,
        "fault {fault}: repro barely shrank ({} of {})",
        repro.trace.len(),
        repro.original_events
    );
    assert!(
        repro.trace.len() <= 10,
        "fault {fault}: repro not minimal ({} events):\n{}",
        repro.trace.len(),
        repro.text
    );
    // Replayable: the text dump parses back (comments included) into a
    // well-formed trace exhibiting the same failure.
    let replayed = text_format::parse_text(&repro.text)
        .unwrap_or_else(|e| panic!("fault {fault}: repro text does not parse: {e}"));
    replayed.validate().expect("repro must be well-formed");
    assert_eq!(replayed.len(), repro.trace.len());
    let failure = check_trace(&replayed, fault)
        .expect_err("replayed repro must still fail the conformance check");
    assert_eq!(failure.order, repro.failure.order);
}
