//! Oracle tests for the analyses: every reported pair is checked
//! against the *definitional* partial order built by `tc_orders::spec`.
//!
//! - **Soundness** (all three analyses): a reported pair must be
//!   conflicting and concurrent w.r.t. the corresponding order — for
//!   SHB write/read reports and MAZ reversible pairs, concurrency is
//!   judged with the current event's own direct conflict edges removed
//!   (the ordering the detector consulted).
//! - **Completeness** (HB): the FastTrack-style detector finds at least
//!   one race exactly when a concurrent conflicting pair exists.
//! - **Representation independence**: tree clocks and vector clocks
//!   produce byte-identical reports.

use std::collections::HashMap;

use proptest::prelude::*;

use tc_analysis::{HbRaceDetector, MazAnalyzer, RaceReport, ShbRaceDetector};
use tc_core::{Epoch, TreeClock, VectorClock};
use tc_orders::spec::{spec_dag, spec_dag_with, SpecOptions};
use tc_orders::PartialOrderKind;
use tc_trace::gen::WorkloadSpec;
use tc_trace::Trace;

/// Maps each event's `(tid, local time)` epoch to its trace index.
fn epoch_index(trace: &Trace) -> HashMap<(u32, u32), usize> {
    let ltimes = trace.local_times();
    trace
        .iter()
        .enumerate()
        .map(|(i, e)| ((e.tid.raw(), ltimes[i]), i))
        .collect()
}

fn index_of(map: &HashMap<(u32, u32), usize>, e: Epoch) -> usize {
    *map.get(&(e.tid().raw(), e.time()))
        .expect("reported epoch does not identify an event")
}

fn small_workload(seed: u64, threads: u32, sync_pct: u8) -> Trace {
    WorkloadSpec {
        threads,
        locks: 2,
        vars: 3,
        events: 100,
        sync_ratio: f64::from(sync_pct) / 100.0,
        write_ratio: 0.45,
        fork_join: seed.is_multiple_of(3),
        seed,
        ..WorkloadSpec::default()
    }
    .generate()
}

/// Checks that each reported pair is conflicting and concurrent in the
/// order `kind`, dropping the current event's direct conflict edges for
/// the orders that have them (SHB reads, MAZ accesses).
fn assert_sound(trace: &Trace, kind: PartialOrderKind, report: &RaceReport) {
    let map = epoch_index(trace);
    let plain = spec_dag(trace, kind).reachability();
    for race in &report.races {
        let i = index_of(&map, race.prior);
        let j = index_of(&map, race.current);
        assert!(i < j, "prior event must come first ({i} vs {j})");
        assert!(
            trace[i].conflicts_with(&trace[j]),
            "{kind}: reported pair ({i},{j}) does not conflict"
        );
        let concurrent = if kind == PartialOrderKind::Hb {
            plain.concurrent(i, j)
        } else {
            let dropped = spec_dag_with(
                trace,
                kind,
                SpecOptions {
                    drop_conflict_edges_into: Some(j),
                },
            )
            .reachability();
            !dropped.ordered(i, j)
        };
        assert!(
            concurrent,
            "{kind}: reported pair ({i},{j}) is actually ordered: {} vs {}",
            trace[i], trace[j]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hb_detector_is_sound_and_complete(
        seed in 0u64..10_000,
        threads in 2u32..6,
        sync_pct in 0u8..70,
    ) {
        let trace = small_workload(seed, threads, sync_pct);
        let report = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        assert_sound(&trace, PartialOrderKind::Hb, &report);

        // Completeness: FastTrack finds a race iff one exists.
        let oracle_pairs = spec_dag(&trace, PartialOrderKind::Hb)
            .reachability()
            .concurrent_conflicting_pairs(&trace);
        prop_assert_eq!(
            report.is_empty(),
            oracle_pairs.is_empty(),
            "HB detector nonemptiness must match the oracle ({} oracle pairs)",
            oracle_pairs.len()
        );
    }

    #[test]
    fn shb_detector_is_sound(
        seed in 0u64..10_000,
        threads in 2u32..6,
        sync_pct in 0u8..70,
    ) {
        let trace = small_workload(seed, threads, sync_pct);
        let report = ShbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        assert_sound(&trace, PartialOrderKind::Shb, &report);
    }

    #[test]
    fn maz_analyzer_is_sound(
        seed in 0u64..10_000,
        threads in 2u32..6,
        sync_pct in 0u8..70,
    ) {
        let trace = small_workload(seed, threads, sync_pct);
        let report = MazAnalyzer::<TreeClock>::new(&trace).run(&trace);
        assert_sound(&trace, PartialOrderKind::Maz, &report);
    }

    #[test]
    fn reports_are_representation_independent(
        seed in 0u64..10_000,
        threads in 2u32..6,
        sync_pct in 0u8..70,
    ) {
        let trace = small_workload(seed, threads, sync_pct);
        prop_assert_eq!(
            HbRaceDetector::<TreeClock>::new(&trace).run(&trace),
            HbRaceDetector::<VectorClock>::new(&trace).run(&trace)
        );
        prop_assert_eq!(
            ShbRaceDetector::<TreeClock>::new(&trace).run(&trace),
            ShbRaceDetector::<VectorClock>::new(&trace).run(&trace)
        );
        prop_assert_eq!(
            MazAnalyzer::<TreeClock>::new(&trace).run(&trace),
            MazAnalyzer::<VectorClock>::new(&trace).run(&trace)
        );
    }
}

/// A fully synchronized workload has no races under any analysis.
#[test]
fn race_free_traces_yield_empty_reports() {
    let trace = tc_trace::gen::scenarios::single_lock(8, 2_000, 3);
    assert!(HbRaceDetector::<TreeClock>::new(&trace)
        .run(&trace)
        .is_empty());
    assert!(ShbRaceDetector::<TreeClock>::new(&trace)
        .run(&trace)
        .is_empty());
    assert!(MazAnalyzer::<TreeClock>::new(&trace).run(&trace).is_empty());
}

/// SHB reports are a subset of HB reports in count on a racy workload
/// (SHB's extra edges only ever suppress later reports), and the MAZ
/// reversible pairs coincide with SHB races on sync-free traces.
#[test]
fn analysis_report_relationships() {
    let trace = WorkloadSpec {
        threads: 4,
        locks: 1,
        vars: 2,
        events: 400,
        sync_ratio: 0.0,
        write_ratio: 0.5,
        seed: 9,
        ..WorkloadSpec::default()
    }
    .generate();
    let hb = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    let shb = ShbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    assert!(shb.total <= hb.total, "SHB reports exceed HB reports");
    assert!(!hb.is_empty());
}
