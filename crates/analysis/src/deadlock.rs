//! Lock-order deadlock-candidate detection — one of the classic
//! partial-order-adjacent dynamic analyses the paper lists as an
//! application domain (deadlock detection and reproduction, Samak &
//! Ramanathan PPoPP 2014; Sulzmann & Stadtmüller PPDP 2018).
//!
//! A *lock-order inversion* is a pair of locks acquired in opposite
//! nesting orders by different threads (`t1: acq m; acq n` vs
//! `t2: acq n; acq m`) — a deadlock candidate: under a different
//! schedule the two threads can block each other forever. The detector
//! builds the lock-order graph (edge `m -> n` when a thread acquires
//! `n` while holding `m`) and reports every 2-cycle between distinct
//! threads, the standard dynamic check.

use std::collections::BTreeSet;

use tc_core::ThreadId;
use tc_trace::{Event, LockId, Op, Trace};

/// A deadlock candidate: two locks acquired in opposite orders by two
/// threads.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeadlockCandidate {
    /// The lock pair, normalized so `first < second`.
    pub locks: (LockId, LockId),
    /// A thread that acquired `first` while holding `second`.
    pub thread_ab: ThreadId,
    /// A thread that acquired `second` while holding `first`.
    pub thread_ba: ThreadId,
}

/// A streaming lock-order analyzer.
///
/// # Example
///
/// ```rust
/// use tc_analysis::deadlock::LockOrderAnalyzer;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.acquire(0, "m").acquire(0, "n").release(0, "n").release(0, "m");
/// b.acquire(1, "n").acquire(1, "m").release(1, "m").release(1, "n");
/// let trace = b.finish();
///
/// let candidates = LockOrderAnalyzer::new(&trace).run(&trace);
/// assert_eq!(candidates.len(), 1); // the classic ABBA inversion
/// ```
pub struct LockOrderAnalyzer {
    /// Locks currently held per thread, in acquisition order.
    held: Vec<Vec<LockId>>,
    /// Observed nesting edges `(outer, inner, thread)`.
    edges: BTreeSet<(LockId, LockId, ThreadId)>,
    /// Candidates found so far (deduplicated by lock pair).
    found: BTreeSet<(LockId, LockId)>,
    candidates: Vec<DeadlockCandidate>,
}

impl LockOrderAnalyzer {
    /// Creates an analyzer sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        LockOrderAnalyzer {
            held: vec![Vec::new(); trace.thread_count()],
            edges: BTreeSet::new(),
            found: BTreeSet::new(),
            candidates: Vec::new(),
        }
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        if t.index() >= self.held.len() {
            self.held.resize_with(t.index() + 1, Vec::new);
        }
    }

    /// Processes one event (in trace order).
    pub fn process(&mut self, e: &Event) {
        self.ensure_thread(e.tid);
        match e.op {
            Op::Acquire(inner) => {
                for &outer in &self.held[e.tid.index()] {
                    self.edges.insert((outer, inner, e.tid));
                    // Does any *other* thread nest the opposite way?
                    let reversed: Vec<ThreadId> = self
                        .edges
                        .range(
                            (inner, outer, ThreadId::new(0))
                                ..=(inner, outer, ThreadId::new(u32::MAX)),
                        )
                        .map(|&(_, _, t)| t)
                        .filter(|&t| t != e.tid)
                        .collect();
                    for other in reversed {
                        let key = if outer < inner {
                            (outer, inner)
                        } else {
                            (inner, outer)
                        };
                        if self.found.insert(key) {
                            self.candidates.push(DeadlockCandidate {
                                locks: key,
                                thread_ab: other,
                                thread_ba: e.tid,
                            });
                        }
                    }
                }
                self.held[e.tid.index()].push(inner);
            }
            Op::Release(l) => {
                if let Some(pos) = self.held[e.tid.index()].iter().rposition(|&h| h == l) {
                    self.held[e.tid.index()].remove(pos);
                }
            }
            _ => {}
        }
    }

    /// Consumes the analyzer, processing all events of `trace` and
    /// returning the candidates found.
    pub fn run(mut self, trace: &Trace) -> Vec<DeadlockCandidate> {
        for e in trace {
            self.process(e);
        }
        self.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::TraceBuilder;

    fn abba() -> Trace {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m")
            .acquire(0, "n")
            .release(0, "n")
            .release(0, "m");
        b.acquire(1, "n")
            .acquire(1, "m")
            .release(1, "m")
            .release(1, "n");
        b.finish()
    }

    #[test]
    fn abba_inversion_is_found() {
        let trace = abba();
        let c = LockOrderAnalyzer::new(&trace).run(&trace);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].locks, (LockId::new(0), LockId::new(1)));
        assert_ne!(c[0].thread_ab, c[0].thread_ba);
    }

    #[test]
    fn consistent_order_is_clean() {
        let mut b = TraceBuilder::new();
        for t in 0..3u32 {
            b.acquire(t, "m")
                .acquire(t, "n")
                .release(t, "n")
                .release(t, "m");
        }
        let trace = b.finish();
        assert!(LockOrderAnalyzer::new(&trace).run(&trace).is_empty());
    }

    #[test]
    fn same_thread_inversion_is_not_a_deadlock() {
        // One thread nesting both ways cannot deadlock with itself.
        let mut b = TraceBuilder::new();
        b.acquire(0, "m")
            .acquire(0, "n")
            .release(0, "n")
            .release(0, "m");
        b.acquire(0, "n")
            .acquire(0, "m")
            .release(0, "m")
            .release(0, "n");
        let trace = b.finish();
        assert!(LockOrderAnalyzer::new(&trace).run(&trace).is_empty());
    }

    #[test]
    fn nested_chains_report_direct_inversions() {
        // t0 nests a < b < c (edges a->b, a->c, b->c); t1 nests c < a.
        // Exactly one pair is directly inverted: (a, c). The a->b->c->a
        // 3-cycle shares the same witness here; detecting cycles longer
        // than 2 without a shared 2-cycle is documented as out of scope.
        let mut b = TraceBuilder::new();
        b.acquire(0, "a").acquire(0, "b").acquire(0, "c");
        b.release(0, "c").release(0, "b").release(0, "a");
        b.acquire(1, "c")
            .acquire(1, "a")
            .release(1, "a")
            .release(1, "c");
        let trace = b.finish();
        let c = LockOrderAnalyzer::new(&trace).run(&trace);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].locks, (LockId::new(0), LockId::new(2)));
    }

    #[test]
    fn candidates_deduplicate_per_lock_pair() {
        let mut b = TraceBuilder::new();
        for _ in 0..3 {
            b.acquire(0, "m")
                .acquire(0, "n")
                .release(0, "n")
                .release(0, "m");
            b.acquire(1, "n")
                .acquire(1, "m")
                .release(1, "m")
                .release(1, "n");
        }
        let trace = b.finish();
        assert_eq!(LockOrderAnalyzer::new(&trace).run(&trace).len(), 1);
    }

    #[test]
    fn generated_scenarios_have_no_inversions() {
        // The Figure 10 generators never nest locks.
        for s in tc_trace::gen::Scenario::ALL {
            let trace = s.generate(8, 2_000, 3);
            assert!(LockOrderAnalyzer::new(&trace).run(&trace).is_empty());
        }
    }
}
