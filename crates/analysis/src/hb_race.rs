//! Happens-before data-race detection — the FastTrack analysis on top
//! of the HB engine.
//!
//! For every access the detector performs O(1) epoch checks against the
//! variable's access history; a failed check is a pair of conflicting,
//! HB-concurrent events, i.e. a data race. This detector is *sound*
//! (every report is a real HB race) and detects the first race of every
//! trace.

use tc_core::{ClockPool, LogicalClock};
use tc_trace::{Event, Op, Trace};

use crate::epoch::{upcoming_epoch, VarHistories};
use crate::report::RaceReport;
use tc_orders::{HbEngine, RunMetrics};

/// A streaming HB race detector, generic over the clock representation.
///
/// # Example
///
/// ```rust
/// use tc_analysis::HbRaceDetector;
/// use tc_core::TreeClock;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.acquire(0, "m").write(0, "x").release(0, "m");
/// b.acquire(1, "m").write(1, "x").release(1, "m");
/// let trace = b.finish();
///
/// // Properly locked: no race.
/// let report = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
/// assert!(report.is_empty());
/// ```
pub struct HbRaceDetector<C> {
    engine: HbEngine<C>,
    vars: VarHistories,
    report: RaceReport,
}

impl<C: LogicalClock> HbRaceDetector<C> {
    /// Creates a detector sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        Self::with_pool(trace, ClockPool::new())
    }

    /// Creates a detector whose engine draws its clocks from `pool`;
    /// reclaim it with [`into_pool`](Self::into_pool).
    pub fn with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        HbRaceDetector {
            engine: HbEngine::with_pool(trace, pool),
            vars: VarHistories::with_vars(trace.var_count()),
            report: RaceReport::new(),
        }
    }

    /// Tears the detector down, releasing the engine's clocks into its
    /// pool for the next run to reuse.
    pub fn into_pool(self) -> ClockPool<C> {
        self.engine.into_pool()
    }

    /// Heap bytes currently owned by the underlying engine's clocks.
    pub fn clock_bytes(&self) -> usize {
        self.engine.clock_bytes()
    }

    /// Runs the whole trace with pooled clocks, returning the engine
    /// metrics together with the race report.
    pub fn run_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> (RunMetrics, RaceReport) {
        let mut d = Self::with_pool(trace, std::mem::take(pool));
        for e in trace {
            d.process(e);
        }
        let metrics = *d.metrics();
        let HbRaceDetector { engine, report, .. } = d;
        *pool = engine.into_pool();
        (metrics, report)
    }

    /// Processes one event (in trace order); race checks happen against
    /// the thread's clock before the event's own ordering edges apply.
    pub fn process(&mut self, e: &Event) {
        // Race checks use the pre-event clock: the event's own increment
        // only affects its thread's entry, which never participates in a
        // conflicting (different-thread) check.
        match e.op {
            Op::Read(x) => {
                let epoch = upcoming_epoch(e.tid, self.engine.clock_of(e.tid));
                let clock = self.engine.clock_of(e.tid);
                match clock {
                    Some(c) => self.vars.entry(x).on_read(epoch, c, &mut self.report),
                    None => {
                        // First event of the thread: an empty clock.
                        let c = C::new();
                        self.vars.entry(x).on_read(epoch, &c, &mut self.report);
                    }
                }
            }
            Op::Write(x) => {
                let epoch = upcoming_epoch(e.tid, self.engine.clock_of(e.tid));
                match self.engine.clock_of(e.tid) {
                    Some(c) => self.vars.entry(x).on_write(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_write(epoch, &c, &mut self.report);
                    }
                }
            }
            _ => {}
        }
        self.engine.process(e);
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// The underlying engine's work metrics.
    pub fn metrics(&self) -> &RunMetrics {
        self.engine.metrics()
    }

    /// Consumes the detector, processing all remaining events of
    /// `trace` and returning the final report.
    pub fn run(mut self, trace: &Trace) -> RaceReport {
        for e in trace {
            self.process(e);
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RaceKind;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    fn detect(trace: &Trace) -> RaceReport {
        HbRaceDetector::<TreeClock>::new(trace).run(trace)
    }

    #[test]
    fn unsynchronized_writes_race() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x");
        let r = detect(&b.finish());
        assert_eq!(r.total, 1);
        assert_eq!(r.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        b.acquire(2, "m").write(2, "x").release(2, "m");
        assert!(detect(&b.finish()).is_empty());
    }

    #[test]
    fn read_write_race_is_found() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // t0 w
        b.acquire(1, "m").read(1, "x"); // racy with the write? no sync with t0
        let r = detect(&b.finish());
        assert_eq!(r.total, 1);
        assert_eq!(r.races[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn fork_join_orders_accesses() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.fork(0, 1);
        b.write(1, "x"); // ordered after parent's write via fork
        b.join(0, 1);
        b.write(0, "x"); // ordered after child's write via join
        assert!(detect(&b.finish()).is_empty());
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(0, "x").write(0, "x");
        assert!(detect(&b.finish()).is_empty());
    }

    #[test]
    fn racy_reads_then_write_report_each_read() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.read(1, "x"); // races with write
        b.read(2, "x"); // races with write
        b.write(3, "x"); // races with write and both reads
        let r = detect(&b.finish());
        // w0/r1, w0/r2, w0/w3, r1/w3, r2/w3.
        assert_eq!(r.total, 5);
    }

    #[test]
    fn representations_report_identical_races() {
        let mut b = TraceBuilder::new();
        for i in 0..40u32 {
            match i % 5 {
                0 => {
                    b.write_id(i % 3, 0);
                }
                1 => {
                    b.read_id((i + 1) % 3, 0);
                }
                2 => {
                    b.acquire_id(i % 3, 0);
                    b.release_id(i % 3, 0);
                }
                3 => {
                    b.read_id(i % 3, 1);
                }
                _ => {
                    b.write_id((i + 2) % 3, 1);
                }
            }
        }
        let trace = b.finish();
        trace.validate().unwrap();
        let tc = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        let vc = HbRaceDetector::<VectorClock>::new(&trace).run(&trace);
        assert_eq!(tc, vc);
    }
}
