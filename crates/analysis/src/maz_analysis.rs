//! Mazurkiewicz reversible-pair analysis, on top of the MAZ engine.
//!
//! Under MAZ every conflicting pair is ordered by fiat (in trace
//! order). What a stateless model checker wants to know is which of
//! those orderings are *forced only by the direct conflict edge* — such
//! pairs can potentially be reversed, and are exactly the backtracking
//! candidates of dynamic partial-order reduction (the paper's Section 6
//! "the model checker identifies such event pairs and attempts to
//! reverse their order").
//!
//! The analysis mirrors the race detectors: before the engine adds the
//! direct edges for the current access, O(1) epoch checks decide
//! whether the access was *already* transitively ordered after the
//! last write / the reads since it; if not, the pair is reversible.

use tc_core::{ClockPool, LogicalClock};
use tc_trace::{Event, Op, Trace};

use crate::epoch::{upcoming_epoch, VarHistories};
use crate::report::RaceReport;
use tc_orders::{MazEngine, RunMetrics};

/// A streaming reversible-pair analyzer for the Mazurkiewicz order.
///
/// Reports are returned as a [`RaceReport`]; each entry is a
/// conflicting pair whose MAZ ordering is not transitively implied —
/// i.e. a DPOR backtracking candidate.
///
/// # Example
///
/// ```rust
/// use tc_analysis::MazAnalyzer;
/// use tc_core::TreeClock;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.write(0, "x");
/// b.write(1, "x"); // reversible: only the direct edge orders them
/// let trace = b.finish();
///
/// let report = MazAnalyzer::<TreeClock>::new(&trace).run(&trace);
/// assert_eq!(report.total, 1);
/// ```
pub struct MazAnalyzer<C> {
    engine: MazEngine<C>,
    vars: VarHistories,
    report: RaceReport,
}

impl<C: LogicalClock> MazAnalyzer<C> {
    /// Creates an analyzer sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        Self::with_pool(trace, ClockPool::new())
    }

    /// Creates an analyzer whose engine draws its clocks from `pool`;
    /// reclaim it with [`into_pool`](Self::into_pool).
    pub fn with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        MazAnalyzer {
            engine: MazEngine::with_pool(trace, pool),
            vars: VarHistories::with_vars(trace.var_count()),
            report: RaceReport::new(),
        }
    }

    /// Tears the analyzer down, releasing the engine's clocks into its
    /// pool for the next run to reuse.
    pub fn into_pool(self) -> ClockPool<C> {
        self.engine.into_pool()
    }

    /// Heap bytes currently owned by the underlying engine's clocks.
    pub fn clock_bytes(&self) -> usize {
        self.engine.clock_bytes()
    }

    /// Runs the whole trace with pooled clocks, returning the engine
    /// metrics together with the reversible-pair report.
    pub fn run_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> (RunMetrics, RaceReport) {
        let mut d = Self::with_pool(trace, std::mem::take(pool));
        for e in trace {
            d.process(e);
        }
        let metrics = *d.metrics();
        let MazAnalyzer { engine, report, .. } = d;
        *pool = engine.into_pool();
        (metrics, report)
    }

    /// Processes one event (in trace order).
    pub fn process(&mut self, e: &Event) {
        match e.op {
            Op::Read(x) => {
                let epoch = upcoming_epoch(e.tid, self.engine.clock_of(e.tid));
                match self.engine.clock_of(e.tid) {
                    Some(c) => self.vars.entry(x).on_read(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_read(epoch, &c, &mut self.report);
                    }
                }
            }
            Op::Write(x) => {
                let epoch = upcoming_epoch(e.tid, self.engine.clock_of(e.tid));
                match self.engine.clock_of(e.tid) {
                    Some(c) => self.vars.entry(x).on_write(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_write(epoch, &c, &mut self.report);
                    }
                }
            }
            _ => {}
        }
        self.engine.process(e);
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// The underlying engine's work metrics.
    pub fn metrics(&self) -> &RunMetrics {
        self.engine.metrics()
    }

    /// Consumes the analyzer, processing all events of `trace` and
    /// returning the final report.
    pub fn run(mut self, trace: &Trace) -> RaceReport {
        for e in trace {
            self.process(e);
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    fn analyze(trace: &Trace) -> RaceReport {
        MazAnalyzer::<TreeClock>::new(trace).run(trace)
    }

    #[test]
    fn direct_only_orderings_are_reversible() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x");
        assert_eq!(analyze(&b.finish()).total, 1);
    }

    #[test]
    fn transitively_ordered_pairs_are_not_reversible() {
        // w0(x); r1(x); w1(x): the pair (w0, w1) is implied by
        // w0 -> r1 (direct) and r1 -> w1 (thread order), so only the
        // first two pairs are reversible.
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x");
        assert_eq!(analyze(&b.finish()).total, 1);
    }

    #[test]
    fn lock_ordered_conflicts_are_not_reversible() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").write(1, "x").release(1, "m");
        assert!(analyze(&b.finish()).is_empty());
    }

    #[test]
    fn second_write_after_two_racy_reads_counts_both() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // e0
        b.read(1, "x"); // reversible with e0
        b.read(2, "x"); // reversible with e0
        b.write(0, "x"); // NOT reversible with own write; reversible with both reads
        let r = analyze(&b.finish());
        // pairs: (w0,r1), (w0,r2), (r1,w0'), (r2,w0').
        assert_eq!(r.total, 4);
    }

    #[test]
    fn representations_agree() {
        let mut b = TraceBuilder::new();
        for i in 0..60u32 {
            let t = i % 4;
            match i % 4 {
                0 => {
                    b.write_id(t, i % 2);
                }
                1 | 2 => {
                    b.read_id((t + 1) % 4, i % 2);
                }
                _ => {
                    b.acquire_id(t, 0);
                    b.release_id(t, 0);
                }
            }
        }
        let trace = b.finish();
        trace.validate().unwrap();
        let tc = MazAnalyzer::<TreeClock>::new(&trace).run(&trace);
        let vc = MazAnalyzer::<VectorClock>::new(&trace).run(&trace);
        assert_eq!(tc, vc);
    }
}
