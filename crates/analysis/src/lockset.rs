//! Eraser-style lockset race detection — the classic non-clock baseline
//! (Savage et al., TOCS 1997; the Goldilocks line of work in the
//! paper's related-work section descends from it).
//!
//! The lockset discipline says: every shared variable is protected by
//! some fixed set of locks, held on *every* access. The detector
//! intersects, per variable, the locksets of all accesses; an empty
//! intersection is a discipline violation. This is cheap — no clocks at
//! all — but *unsound in both directions* compared to happens-before:
//! it misses no classic data race on consistently-unlocked data, yet
//! flags fork/join- or signal-ordered accesses that never race. The
//! tests contrast it with the HB detector on exactly such traces, which
//! is the standard motivation for clock-based detection (and thus for
//! making clocks fast — the paper's subject).

use std::collections::BTreeSet;

use tc_core::ThreadId;
use tc_trace::{Event, LockId, Op, Trace, VarId};

/// Per-variable state of the lockset discipline check.
#[derive(Clone, Debug)]
struct VarLockset {
    /// Intersection of locks held over all accesses so far; `None`
    /// until the first access (the lattice top).
    candidate: Option<BTreeSet<LockId>>,
    /// Whether a violation was already reported for this variable.
    reported: bool,
    /// The first thread that accessed the variable (the Eraser
    /// refinement: a variable is exempt while thread-local).
    first_thread: Option<ThreadId>,
    /// Whether a second thread has accessed the variable.
    shared: bool,
}

impl VarLockset {
    fn new() -> Self {
        VarLockset {
            candidate: None,
            reported: false,
            first_thread: None,
            shared: false,
        }
    }
}

/// A lockset discipline violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocksetViolation {
    /// The unprotected variable.
    pub var: VarId,
    /// Index of the event at which the candidate set became empty.
    pub at: usize,
    /// The thread whose access emptied the candidate set.
    pub tid: ThreadId,
}

/// An Eraser-style lockset detector.
///
/// # Example
///
/// ```rust
/// use tc_analysis::lockset::LocksetDetector;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.acquire(0, "m").write(0, "x").release(0, "m");
/// b.write(1, "x"); // second thread, no lock: discipline violation
/// let trace = b.finish();
///
/// let violations = LocksetDetector::new(&trace).run(&trace);
/// assert_eq!(violations.len(), 1);
/// ```
pub struct LocksetDetector {
    vars: Vec<VarLockset>,
    held: Vec<BTreeSet<LockId>>,
    violations: Vec<LocksetViolation>,
    position: usize,
}

impl LocksetDetector {
    /// Creates a detector sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        LocksetDetector {
            vars: (0..trace.var_count()).map(|_| VarLockset::new()).collect(),
            held: vec![BTreeSet::new(); trace.thread_count()],
            violations: Vec::new(),
            position: 0,
        }
    }

    fn ensure_var(&mut self, x: VarId) {
        if x.index() >= self.vars.len() {
            self.vars.resize_with(x.index() + 1, VarLockset::new);
        }
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        if t.index() >= self.held.len() {
            self.held.resize_with(t.index() + 1, BTreeSet::new);
        }
    }

    /// Processes one event (in trace order).
    pub fn process(&mut self, e: &Event) {
        let i = self.position;
        self.position += 1;
        self.ensure_thread(e.tid);
        match e.op {
            Op::Acquire(l) => {
                self.held[e.tid.index()].insert(l);
            }
            Op::Release(l) => {
                self.held[e.tid.index()].remove(&l);
            }
            Op::Read(x) | Op::Write(x) => {
                self.ensure_var(x);
                let held = &self.held[e.tid.index()];
                let state = &mut self.vars[x.index()];
                match state.first_thread {
                    None => state.first_thread = Some(e.tid),
                    Some(first) if first != e.tid => state.shared = true,
                    _ => {}
                }
                match &mut state.candidate {
                    None => state.candidate = Some(held.clone()),
                    Some(c) => c.retain(|l| held.contains(l)),
                }
                let empty = state.candidate.as_ref().is_some_and(BTreeSet::is_empty);
                if empty && state.shared && !state.reported {
                    state.reported = true;
                    self.violations.push(LocksetViolation {
                        var: x,
                        at: i,
                        tid: e.tid,
                    });
                }
            }
            Op::Fork(_) | Op::Join(_) => {}
        }
    }

    /// The candidate lockset of a variable (for inspection); `None`
    /// before the first access.
    pub fn candidate_lockset(&self, x: VarId) -> Option<&BTreeSet<LockId>> {
        self.vars.get(x.index()).and_then(|v| v.candidate.as_ref())
    }

    /// Consumes the detector, processing all events of `trace` and
    /// returning the violations found.
    pub fn run(mut self, trace: &Trace) -> Vec<LocksetViolation> {
        for e in trace {
            self.process(e);
        }
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HbRaceDetector;
    use tc_core::TreeClock;
    use tc_trace::TraceBuilder;

    #[test]
    fn consistent_locking_passes() {
        let mut b = TraceBuilder::new();
        for t in 0..3u32 {
            b.acquire(t, "m").write(t, "x").read(t, "x").release(t, "m");
        }
        let trace = b.finish();
        assert!(LocksetDetector::new(&trace).run(&trace).is_empty());
    }

    #[test]
    fn inconsistent_locking_is_flagged_once() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "n").write(1, "x").release(1, "n"); // different lock!
        b.write(0, "x"); // further accesses don't re-report
        let trace = b.finish();
        let v = LocksetDetector::new(&trace).run(&trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].var, VarId::new(0));
        assert_eq!(v[0].at, 4);
    }

    #[test]
    fn thread_local_data_is_exempt() {
        // Only one thread ever touches x: no violation even unlocked.
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(0, "x").write(0, "x");
        let trace = b.finish();
        assert!(LocksetDetector::new(&trace).run(&trace).is_empty());
    }

    #[test]
    fn candidate_set_intersects_over_accesses() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m")
            .acquire(0, "n")
            .write(0, "x")
            .release(0, "n")
            .release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        let trace = b.finish();
        let mut d = LocksetDetector::new(&trace);
        for e in &trace {
            d.process(e);
        }
        let c = d.candidate_lockset(VarId::new(0)).unwrap();
        assert_eq!(c.len(), 1, "only the common lock m survives");
    }

    /// The canonical lockset false positive: fork/join ordering without
    /// locks. HB (clock-based) correctly stays silent; lockset flags it
    /// — the precision gap that motivates clock-based detection.
    #[test]
    fn fork_join_ordering_is_a_lockset_false_positive() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.fork(0, 1);
        b.write(1, "x");
        b.join(0, 1);
        b.write(0, "x");
        let trace = b.finish();

        let hb = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        assert!(hb.is_empty(), "HB knows the accesses are ordered");

        let ls = LocksetDetector::new(&trace).run(&trace);
        assert_eq!(ls.len(), 1, "lockset cannot see fork/join ordering");
    }

    /// And the converse sanity: on an unlocked shared access, both agree.
    #[test]
    fn real_races_are_caught_by_both() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x");
        let trace = b.finish();
        assert!(!HbRaceDetector::<TreeClock>::new(&trace)
            .run(&trace)
            .is_empty());
        assert!(!LocksetDetector::new(&trace).run(&trace).is_empty());
    }
}
