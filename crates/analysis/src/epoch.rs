//! Per-variable access histories with FastTrack-style adaptive
//! representation.
//!
//! The history of a variable stores the epoch of its last write and the
//! reads since that write — as a single epoch while reads are totally
//! ordered, widening to a full vector time only when concurrent reads
//! appear (the rare case). All checks against a thread's clock are O(1)
//! per entry via `Get` (Remark 1 of the paper), for both clock
//! representations.

use tc_core::{Epoch, LogicalClock, ThreadId, VectorTime};

use crate::report::{Race, RaceKind, RaceReport};
use tc_trace::VarId;

/// Reads since the last write: one epoch, or a vector once reads are
/// concurrent with each other.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ReadState {
    Epoch(Epoch),
    Vector(VectorTime),
}

/// Access history of one shared variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarHistory {
    var: VarId,
    write: Epoch,
    reads: ReadState,
}

impl VarHistory {
    /// Creates an empty history for variable `var`.
    pub fn new(var: VarId) -> Self {
        VarHistory {
            var,
            write: Epoch::ZERO,
            reads: ReadState::Epoch(Epoch::ZERO),
        }
    }

    /// The epoch of the last write (zero if none).
    pub fn write_epoch(&self) -> Epoch {
        self.write
    }

    /// Processes a read at `epoch` by a thread whose clock (w.r.t. the
    /// partial order, *before* any ordering edge added for this event)
    /// is `clock`. Reports a write/read race into `report` if the last
    /// write is concurrent with this read, then updates the read state.
    pub fn on_read<C: LogicalClock>(&mut self, epoch: Epoch, clock: &C, report: &mut RaceReport) {
        report.checks += 1;
        if !self.write.is_zero() && !self.write.leq_clock(clock) {
            report.record(Race {
                var: self.var,
                kind: RaceKind::WriteRead,
                prior: self.write,
                current: epoch,
            });
        }
        match &mut self.reads {
            ReadState::Epoch(r) => {
                if r.is_zero() || r.tid() == epoch.tid() || r.leq_clock(clock) {
                    // The previous read is ordered before (or by) us:
                    // the single epoch still summarizes all reads.
                    *r = epoch;
                } else {
                    // Concurrent reads: widen to a vector.
                    let mut v = VectorTime::new();
                    v.set(r.tid(), r.time());
                    v.set(epoch.tid(), epoch.time());
                    self.reads = ReadState::Vector(v);
                }
            }
            ReadState::Vector(v) => {
                v.set(epoch.tid(), epoch.time());
            }
        }
    }

    /// Processes a write at `epoch` with the thread's pre-edge `clock`.
    /// Reports write/write and read/write races, then resets the
    /// history (the new write epoch summarizes the past for future
    /// checks).
    pub fn on_write<C: LogicalClock>(&mut self, epoch: Epoch, clock: &C, report: &mut RaceReport) {
        report.checks += 1;
        if !self.write.is_zero() && !self.write.leq_clock(clock) {
            report.record(Race {
                var: self.var,
                kind: RaceKind::WriteWrite,
                prior: self.write,
                current: epoch,
            });
        }
        match &self.reads {
            ReadState::Epoch(r) => {
                report.checks += 1;
                if !r.is_zero() && !r.leq_clock(clock) {
                    report.record(Race {
                        var: self.var,
                        kind: RaceKind::ReadWrite,
                        prior: *r,
                        current: epoch,
                    });
                }
            }
            ReadState::Vector(v) => {
                for (t, time) in v.iter() {
                    report.checks += 1;
                    if time > clock.get(t) {
                        report.record(Race {
                            var: self.var,
                            kind: RaceKind::ReadWrite,
                            prior: Epoch::new(t, time),
                            current: epoch,
                        });
                    }
                }
            }
        }
        self.write = epoch;
        self.reads = ReadState::Epoch(Epoch::ZERO);
    }

    /// Returns `true` while the read history fits in a single epoch
    /// (exposed for tests of the adaptive representation).
    pub fn reads_are_epoch(&self) -> bool {
        matches!(self.reads, ReadState::Epoch(_))
    }

    /// Captures this history's state for a streaming checkpoint.
    pub fn snapshot(&self) -> VarHistorySnapshot {
        VarHistorySnapshot {
            var: self.var,
            write: self.write,
            reads: match &self.reads {
                ReadState::Epoch(e) => ReadsSnapshot::Epoch(*e),
                ReadState::Vector(v) => ReadsSnapshot::Vector(v.iter().collect()),
            },
        }
    }

    /// Rebuilds a history from a checkpointed snapshot.
    pub fn from_snapshot(snapshot: &VarHistorySnapshot) -> Self {
        VarHistory {
            var: snapshot.var,
            write: snapshot.write,
            reads: match &snapshot.reads {
                ReadsSnapshot::Epoch(e) => ReadState::Epoch(*e),
                ReadsSnapshot::Vector(pairs) => {
                    let mut v = VectorTime::new();
                    for &(t, time) in pairs {
                        v.set(t, time);
                    }
                    ReadState::Vector(v)
                }
            },
        }
    }
}

/// The serializable reads component of a [`VarHistorySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadsSnapshot {
    /// Reads since the last write are summarized by one epoch.
    Epoch(Epoch),
    /// Concurrent reads, as `(thread, time)` pairs (zero entries
    /// omitted or not — insignificant either way).
    Vector(Vec<(ThreadId, tc_core::LocalTime)>),
}

/// A value-level capture of one [`VarHistory`] — what a streaming
/// checkpoint stores per touched variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarHistorySnapshot {
    /// The variable this history belongs to.
    pub var: VarId,
    /// The last-write epoch (zero if none).
    pub write: Epoch,
    /// The reads since the last write.
    pub reads: ReadsSnapshot,
}

/// A growable collection of per-variable histories.
#[derive(Clone, Debug, Default)]
pub struct VarHistories {
    vars: Vec<VarHistory>,
}

impl VarHistories {
    /// Creates histories with capacity for `vars` variables.
    ///
    /// Entries themselves are lazy: an untouched variable costs nothing
    /// until [`entry`](Self::entry) first touches it (histories are
    /// small, but a trace can declare tens of thousands of variables and
    /// only access a few).
    pub fn with_vars(vars: usize) -> Self {
        VarHistories {
            vars: Vec::with_capacity(vars),
        }
    }

    /// The history of `x`, growing the collection as needed.
    pub fn entry(&mut self, x: VarId) -> &mut VarHistory {
        if x.index() >= self.vars.len() {
            let from = self.vars.len();
            self.vars
                .extend((from..=x.index()).map(|i| VarHistory::new(VarId::new(i as u32))));
        }
        &mut self.vars[x.index()]
    }

    /// Number of (dense) history slots currently materialized.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` when no variable has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Moves `x`'s history out, leaving a fresh one in its place (and
    /// growing the collection as [`entry`](Self::entry) would). The
    /// parallel detector uses this to hand a conflict-free partition's
    /// variables to an epoch shard; [`put`](Self::put) moves them back.
    pub fn take(&mut self, x: VarId) -> VarHistory {
        std::mem::replace(self.entry(x), VarHistory::new(x))
    }

    /// Installs `history` as `x`'s entry (growing as needed), replacing
    /// whatever was there — the inverse of [`take`](Self::take).
    pub fn put(&mut self, x: VarId, history: VarHistory) {
        *self.entry(x) = history;
    }

    /// Captures every touched variable's history for a checkpoint.
    pub fn snapshot(&self) -> Vec<VarHistorySnapshot> {
        self.vars.iter().map(VarHistory::snapshot).collect()
    }

    /// Rebuilds histories from a checkpointed snapshot (dense by
    /// variable index, as produced by [`snapshot`](Self::snapshot)).
    pub fn from_snapshot(snapshots: &[VarHistorySnapshot]) -> Self {
        VarHistories {
            vars: snapshots.iter().map(VarHistory::from_snapshot).collect(),
        }
    }
}

/// Computes the epoch the current event will have: thread `t` at its
/// *next* local time (the clock has not been incremented yet). Public
/// because the streaming `IncrementalDetector` drives the same
/// check-before-process discipline as the batch detectors.
pub fn upcoming_epoch<C: LogicalClock>(t: ThreadId, clock: Option<&C>) -> Epoch {
    Epoch::new(t, clock.map(|c| c.get(t)).unwrap_or(0) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::VectorClock;

    /// Builds a vector clock with the given entries via rooted joins.
    fn clock(entries: &[u32]) -> VectorClock {
        let mut result = VectorClock::new();
        result.init_root(ThreadId::new(0));
        for (i, &v) in entries.iter().enumerate() {
            if i == 0 {
                result.increment(v);
            } else if v > 0 {
                let mut other = VectorClock::new();
                other.init_root(ThreadId::new(i as u32));
                other.increment(v);
                result.join(&other);
            }
        }
        result
    }

    #[test]
    fn ordered_write_then_read_is_not_a_race() {
        let mut h = VarHistory::new(VarId::new(0));
        let mut rep = RaceReport::new();
        h.on_write(Epoch::new(ThreadId::new(0), 1), &clock(&[1]), &mut rep);
        // Reader's clock knows t0@1: ordered.
        h.on_read(Epoch::new(ThreadId::new(1), 1), &clock(&[1, 0]), &mut rep);
        assert!(rep.is_empty());
    }

    #[test]
    fn concurrent_write_then_read_is_a_race() {
        let mut h = VarHistory::new(VarId::new(0));
        let mut rep = RaceReport::new();
        h.on_write(Epoch::new(ThreadId::new(0), 1), &clock(&[1]), &mut rep);
        // Reader knows nothing of t0.
        h.on_read(Epoch::new(ThreadId::new(1), 1), &clock(&[0, 0]), &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn concurrent_reads_widen_to_vector_and_all_race_with_write() {
        let mut h = VarHistory::new(VarId::new(0));
        let mut rep = RaceReport::new();
        h.on_read(Epoch::new(ThreadId::new(0), 1), &clock(&[0]), &mut rep);
        assert!(h.reads_are_epoch());
        h.on_read(Epoch::new(ThreadId::new(1), 1), &clock(&[0, 0]), &mut rep);
        assert!(!h.reads_are_epoch(), "concurrent reads must widen");
        // A write that saw neither read races with both.
        h.on_write(
            Epoch::new(ThreadId::new(2), 1),
            &clock(&[0, 0, 0]),
            &mut rep,
        );
        assert_eq!(rep.total, 2);
        assert!(rep.races.iter().all(|r| r.kind == RaceKind::ReadWrite));
    }

    #[test]
    fn same_thread_reads_keep_epoch_representation() {
        let mut h = VarHistory::new(VarId::new(0));
        let mut rep = RaceReport::new();
        h.on_read(Epoch::new(ThreadId::new(0), 1), &clock(&[1]), &mut rep);
        h.on_read(Epoch::new(ThreadId::new(0), 2), &clock(&[2]), &mut rep);
        assert!(h.reads_are_epoch());
        assert!(rep.is_empty());
    }

    #[test]
    fn write_resets_read_history() {
        let mut h = VarHistory::new(VarId::new(0));
        let mut rep = RaceReport::new();
        h.on_read(Epoch::new(ThreadId::new(0), 1), &clock(&[1]), &mut rep);
        // The writer has seen the read: ordered, and resets the state.
        h.on_write(Epoch::new(ThreadId::new(1), 1), &clock(&[1, 0]), &mut rep);
        assert!(rep.is_empty());
        assert!(h.reads_are_epoch());
        assert_eq!(h.write_epoch(), Epoch::new(ThreadId::new(1), 1));
    }

    #[test]
    fn histories_grow_on_demand() {
        let mut hs = VarHistories::with_vars(1);
        let h = hs.entry(VarId::new(5));
        assert_eq!(h.write_epoch(), Epoch::ZERO);
    }

    #[test]
    fn snapshot_round_trips_epoch_and_vector_states() {
        let mut hs = VarHistories::with_vars(2);
        let mut rep = RaceReport::new();
        // x0: single-epoch reads; x1: widened concurrent reads.
        hs.entry(VarId::new(0))
            .on_write(Epoch::new(ThreadId::new(0), 1), &clock(&[1]), &mut rep);
        hs.entry(VarId::new(1))
            .on_read(Epoch::new(ThreadId::new(0), 2), &clock(&[2]), &mut rep);
        hs.entry(VarId::new(1))
            .on_read(Epoch::new(ThreadId::new(1), 1), &clock(&[0, 1]), &mut rep);
        assert!(!hs.entry(VarId::new(1)).reads_are_epoch());

        let snap = hs.snapshot();
        let mut restored = VarHistories::from_snapshot(&snap);
        assert_eq!(restored.snapshot(), snap);

        // The restored histories make identical decisions: the same
        // write against the same clock reports the same races.
        let mut rep_a = RaceReport::new();
        let mut rep_b = RaceReport::new();
        let w = Epoch::new(ThreadId::new(2), 1);
        hs.entry(VarId::new(1))
            .on_write(w, &clock(&[0, 0, 0]), &mut rep_a);
        restored
            .entry(VarId::new(1))
            .on_write(w, &clock(&[0, 0, 0]), &mut rep_b);
        assert_eq!(rep_a, rep_b);
        assert_eq!(rep_a.total, 2);
    }
}
