//! Race reports: what the analyses found.

use std::fmt;

use tc_core::Epoch;
use tc_trace::VarId;

/// The kind of a conflicting pair, named prior-access → current-access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// An earlier write conflicting with a later write.
    WriteWrite,
    /// An earlier write conflicting with a later read.
    WriteRead,
    /// An earlier read conflicting with a later write.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceKind::WriteWrite => "w/w",
            RaceKind::WriteRead => "w/r",
            RaceKind::ReadWrite => "r/w",
        })
    }
}

/// One reported conflicting-concurrent pair.
///
/// Events are identified by their [`Epoch`] — the `(thread, local
/// time)` pair that uniquely names an event of the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Race {
    /// The accessed variable.
    pub var: VarId,
    /// Which kinds of accesses collided.
    pub kind: RaceKind,
    /// The earlier access.
    pub prior: Epoch,
    /// The later access (the event being processed when the race was
    /// found).
    pub current: Epoch,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {}: {} ↯ {}",
            self.kind, self.var, self.prior, self.current
        )
    }
}

/// Maximum number of races stored verbatim; beyond this only the count
/// grows (racy traces can produce millions of reports).
pub const MAX_STORED_RACES: usize = 10_000;

/// The aggregate result of one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// Reported pairs, up to [`MAX_STORED_RACES`].
    pub races: Vec<Race>,
    /// Total number of pairs reported (may exceed `races.len()`).
    pub total: u64,
    /// Total number of O(1) concurrency checks performed.
    pub checks: u64,
}

impl RaceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        RaceReport::default()
    }

    /// Records one found race.
    pub fn record(&mut self, race: Race) {
        self.total += 1;
        if self.races.len() < MAX_STORED_RACES {
            self.races.push(race);
        }
    }

    /// Returns `true` if no race was found.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The stored races found since the caller last looked: the live
    /// emission primitive of the streaming subsystem. A consumer keeps
    /// the count of races it has already emitted and calls this after
    /// each event; beyond [`MAX_STORED_RACES`] only
    /// [`total`](RaceReport::total) keeps counting (a live session
    /// observes the overflow through it).
    pub fn races_since(&self, already_emitted: usize) -> &[Race] {
        &self.races[already_emitted.min(self.races.len())..]
    }

    /// The distinct variables involved in stored races.
    pub fn racy_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.races.iter().map(|r| r.var).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race(s) found ({} checks performed)",
            self.total, self.checks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ThreadId;

    fn race(var: u32, t1: u32, c1: u32, t2: u32, c2: u32) -> Race {
        Race {
            var: VarId::new(var),
            kind: RaceKind::WriteWrite,
            prior: Epoch::new(ThreadId::new(t1), c1),
            current: Epoch::new(ThreadId::new(t2), c2),
        }
    }

    #[test]
    fn report_records_and_counts() {
        let mut r = RaceReport::new();
        assert!(r.is_empty());
        r.record(race(0, 0, 1, 1, 1));
        r.record(race(2, 0, 1, 1, 2));
        r.record(race(0, 0, 2, 1, 3));
        assert_eq!(r.total, 3);
        assert_eq!(r.races.len(), 3);
        assert_eq!(r.racy_vars(), vec![VarId::new(0), VarId::new(2)]);
    }

    #[test]
    fn race_display_is_informative() {
        let s = race(1, 0, 3, 2, 7).to_string();
        assert!(s.contains("w/w"));
        assert!(s.contains("x1"));
        assert!(s.contains("3@t0"));
        assert!(s.contains("7@t2"));
    }

    #[test]
    fn kinds_render_distinctly() {
        assert_eq!(RaceKind::WriteWrite.to_string(), "w/w");
        assert_eq!(RaceKind::WriteRead.to_string(), "w/r");
        assert_eq!(RaceKind::ReadWrite.to_string(), "r/w");
    }
}
