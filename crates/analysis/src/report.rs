//! Race reports: what the analyses found.

use std::fmt;

use tc_core::Epoch;
use tc_trace::VarId;

/// The kind of a conflicting pair, named prior-access → current-access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// An earlier write conflicting with a later write.
    WriteWrite,
    /// An earlier write conflicting with a later read.
    WriteRead,
    /// An earlier read conflicting with a later write.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceKind::WriteWrite => "w/w",
            RaceKind::WriteRead => "w/r",
            RaceKind::ReadWrite => "r/w",
        })
    }
}

/// One reported conflicting-concurrent pair.
///
/// Events are identified by their [`Epoch`] — the `(thread, local
/// time)` pair that uniquely names an event of the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Race {
    /// The accessed variable.
    pub var: VarId,
    /// Which kinds of accesses collided.
    pub kind: RaceKind,
    /// The earlier access.
    pub prior: Epoch,
    /// The later access (the event being processed when the race was
    /// found).
    pub current: Epoch,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {}: {} ↯ {}",
            self.kind, self.var, self.prior, self.current
        )
    }
}

/// Maximum number of races stored verbatim; beyond this only the count
/// grows (racy traces can produce millions of reports).
pub const MAX_STORED_RACES: usize = 10_000;

/// The aggregate result of one analysis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Reported pairs, up to the report's storage cap
    /// ([`MAX_STORED_RACES`] unless built with
    /// [`unbounded`](RaceReport::unbounded)).
    pub races: Vec<Race>,
    /// Total number of pairs reported (may exceed `races.len()`).
    pub total: u64,
    /// Total number of O(1) concurrency checks performed.
    pub checks: u64,
    /// Stored-race cap. Private: every externally visible report uses
    /// [`MAX_STORED_RACES`]; only short-lived internal accumulators
    /// (the parallel detector's per-epoch shards, whose races are
    /// replayed through a capped report afterwards) lift it.
    cap: usize,
}

impl Default for RaceReport {
    fn default() -> Self {
        RaceReport {
            races: Vec::new(),
            total: 0,
            checks: 0,
            cap: MAX_STORED_RACES,
        }
    }
}

impl RaceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        RaceReport::default()
    }

    /// Creates an empty report that stores every race verbatim, with
    /// no [`MAX_STORED_RACES`] cap — for bounded internal accumulation
    /// only (see the `cap` field docs); never hold one across an
    /// unbounded stream.
    pub fn unbounded() -> Self {
        RaceReport {
            cap: usize::MAX,
            ..RaceReport::default()
        }
    }

    /// Reassembles a report from persisted parts (checkpoint restore);
    /// the cap is the standard [`MAX_STORED_RACES`].
    pub fn from_parts(races: Vec<Race>, total: u64, checks: u64) -> Self {
        RaceReport {
            races,
            total,
            checks,
            cap: MAX_STORED_RACES,
        }
    }

    /// Records one found race.
    pub fn record(&mut self, race: Race) {
        self.total += 1;
        if self.races.len() < self.cap {
            self.races.push(race);
        }
    }

    /// Returns `true` if no race was found.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The stored races found since the caller last looked: the live
    /// emission primitive of the streaming subsystem. A consumer keeps
    /// the count of races it has already emitted and calls this after
    /// each event; beyond [`MAX_STORED_RACES`] only
    /// [`total`](RaceReport::total) keeps counting (a live session
    /// observes the overflow through it).
    pub fn races_since(&self, already_emitted: usize) -> &[Race] {
        &self.races[already_emitted.min(self.races.len())..]
    }

    /// The distinct variables involved in stored races.
    pub fn racy_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.races.iter().map(|r| r.var).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race(s) found ({} checks performed)",
            self.total, self.checks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ThreadId;

    fn race(var: u32, t1: u32, c1: u32, t2: u32, c2: u32) -> Race {
        Race {
            var: VarId::new(var),
            kind: RaceKind::WriteWrite,
            prior: Epoch::new(ThreadId::new(t1), c1),
            current: Epoch::new(ThreadId::new(t2), c2),
        }
    }

    #[test]
    fn report_records_and_counts() {
        let mut r = RaceReport::new();
        assert!(r.is_empty());
        r.record(race(0, 0, 1, 1, 1));
        r.record(race(2, 0, 1, 1, 2));
        r.record(race(0, 0, 2, 1, 3));
        assert_eq!(r.total, 3);
        assert_eq!(r.races.len(), 3);
        assert_eq!(r.racy_vars(), vec![VarId::new(0), VarId::new(2)]);
    }

    #[test]
    fn capped_and_unbounded_reports_diverge_only_past_the_cap() {
        let mut capped = RaceReport::new();
        let mut open = RaceReport::unbounded();
        for i in 0..(MAX_STORED_RACES as u32 + 5) {
            capped.record(race(i, 0, i + 1, 1, i + 1));
            open.record(race(i, 0, i + 1, 1, i + 1));
        }
        assert_eq!(capped.races.len(), MAX_STORED_RACES);
        assert_eq!(open.races.len(), MAX_STORED_RACES + 5);
        assert_eq!(capped.total, open.total);
    }

    #[test]
    fn race_display_is_informative() {
        let s = race(1, 0, 3, 2, 7).to_string();
        assert!(s.contains("w/w"));
        assert!(s.contains("x1"));
        assert!(s.contains("3@t0"));
        assert!(s.contains("7@t2"));
    }

    #[test]
    fn kinds_render_distinctly() {
        assert_eq!(RaceKind::WriteWrite.to_string(), "w/w");
        assert_eq!(RaceKind::WriteRead.to_string(), "w/r");
        assert_eq!(RaceKind::ReadWrite.to_string(), "r/w");
    }
}
