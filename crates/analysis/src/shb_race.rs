//! Schedulable-happens-before race detection (Mathur, Kini,
//! Viswanathan — OOPSLA 2018), on top of the SHB engine.
//!
//! SHB race reports are *schedulable*: every reported pair corresponds
//! to a real witness execution. The checks are the same epoch checks as
//! in the HB detector, but performed against SHB clocks, and crucially
//! *before* the read's `lw(r) → r` edge is applied (SHB orders each
//! read after its last write by definition, so checking afterwards
//! would mask every write/read race).

use tc_core::{ClockPool, LogicalClock};
use tc_trace::{Event, Op, Trace};

use crate::epoch::{upcoming_epoch, VarHistories};
use crate::report::RaceReport;
use tc_orders::{RunMetrics, ShbEngine};

/// A streaming SHB race detector, generic over the clock
/// representation.
///
/// # Example
///
/// ```rust
/// use tc_analysis::ShbRaceDetector;
/// use tc_core::TreeClock;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.write(0, "x");
/// b.read(1, "x"); // unsynchronized: a schedulable write/read race
/// let trace = b.finish();
///
/// let report = ShbRaceDetector::<TreeClock>::new(&trace).run(&trace);
/// assert_eq!(report.total, 1);
/// ```
pub struct ShbRaceDetector<C> {
    engine: ShbEngine<C>,
    vars: VarHistories,
    report: RaceReport,
}

impl<C: LogicalClock> ShbRaceDetector<C> {
    /// Creates a detector sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        Self::with_pool(trace, ClockPool::new())
    }

    /// Creates a detector whose engine draws its clocks from `pool`;
    /// reclaim it with [`into_pool`](Self::into_pool).
    pub fn with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        ShbRaceDetector {
            engine: ShbEngine::with_pool(trace, pool),
            vars: VarHistories::with_vars(trace.var_count()),
            report: RaceReport::new(),
        }
    }

    /// Tears the detector down, releasing the engine's clocks into its
    /// pool for the next run to reuse.
    pub fn into_pool(self) -> ClockPool<C> {
        self.engine.into_pool()
    }

    /// Heap bytes currently owned by the underlying engine's clocks.
    pub fn clock_bytes(&self) -> usize {
        self.engine.clock_bytes()
    }

    /// Runs the whole trace with pooled clocks, returning the engine
    /// metrics together with the race report.
    pub fn run_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> (RunMetrics, RaceReport) {
        let mut d = Self::with_pool(trace, std::mem::take(pool));
        for e in trace {
            d.process(e);
        }
        let metrics = *d.metrics();
        let ShbRaceDetector { engine, report, .. } = d;
        *pool = engine.into_pool();
        (metrics, report)
    }

    /// Processes one event (in trace order).
    pub fn process(&mut self, e: &Event) {
        match e.op {
            Op::Read(x) => {
                let epoch = upcoming_epoch(e.tid, self.engine.clock_of(e.tid));
                match self.engine.clock_of(e.tid) {
                    Some(c) => self.vars.entry(x).on_read(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_read(epoch, &c, &mut self.report);
                    }
                }
            }
            Op::Write(x) => {
                let epoch = upcoming_epoch(e.tid, self.engine.clock_of(e.tid));
                match self.engine.clock_of(e.tid) {
                    Some(c) => self.vars.entry(x).on_write(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_write(epoch, &c, &mut self.report);
                    }
                }
            }
            _ => {}
        }
        self.engine.process(e);
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// The underlying engine's work metrics.
    pub fn metrics(&self) -> &RunMetrics {
        self.engine.metrics()
    }

    /// Consumes the detector, processing all events of `trace` and
    /// returning the final report.
    pub fn run(mut self, trace: &Trace) -> RaceReport {
        for e in trace {
            self.process(e);
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RaceKind;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    fn detect(trace: &Trace) -> RaceReport {
        ShbRaceDetector::<TreeClock>::new(trace).run(trace)
    }

    #[test]
    fn write_read_race_detected_despite_lw_edge() {
        // SHB orders w -> r by definition, but the detector checks
        // before applying the edge, so the schedulable race is reported.
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x");
        let r = detect(&b.finish());
        assert_eq!(r.total, 1);
        assert_eq!(r.races[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn shb_suppresses_hb_false_continuations() {
        // The classic SHB example: after a racy write-read, subsequent
        // same-variable accesses *through* the read are transitively
        // ordered in SHB. Trace:
        //   t0: w(x); t1: r(x); t1: w(y); t0: r(y)? -- keep it simple:
        //   t0: w(x), t1: r(x), t1: w(x).
        // HB reports (w0, r1), (w0, w1'); SHB orders w0 -> r1 -> w1'
        // after the first race, so only (w0, r1) is a race.
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x");
        let shb = detect(&b.finish());
        assert_eq!(shb.total, 1, "SHB must report only the first race");

        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x");
        let trace = b.finish();
        let hb = crate::HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        assert_eq!(hb.total, 2, "HB reports both pairs");
    }

    #[test]
    fn locked_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").write(1, "x").release(1, "m");
        assert!(detect(&b.finish()).is_empty());
    }

    #[test]
    fn representations_agree() {
        let mut b = TraceBuilder::new();
        for i in 0..60u32 {
            let t = i % 4;
            match i % 3 {
                0 => {
                    b.write_id(t, i % 2);
                }
                1 => {
                    b.read_id((t + 1) % 4, i % 2);
                }
                _ => {
                    b.acquire_id(t, 0);
                    b.release_id(t, 0);
                }
            }
        }
        let trace = b.finish();
        trace.validate().unwrap();
        let tc = ShbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        let vc = ShbRaceDetector::<VectorClock>::new(&trace).run(&trace);
        assert_eq!(tc, vc);
    }
}
