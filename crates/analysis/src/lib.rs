//! Dynamic analyses on top of the partial-order engines — the "analysis
//! component" of the paper's evaluation (Section 6).
//!
//! For each pair of conflicting events the analyses decide whether the
//! events are concurrent with respect to the corresponding partial
//! order, using FastTrack-style *epoch* optimizations (Remark 1 of the
//! paper: `Get` is O(1) on both clock representations, so every epoch
//! optimization applies unchanged to tree clocks):
//!
//! - [`HbRaceDetector`] — happens-before data races (the classic
//!   FastTrack analysis);
//! - [`ShbRaceDetector`] — schedulable-happens-before races, which are
//!   guaranteed to correspond to real reorderings (Mathur et al.,
//!   OOPSLA 2018);
//! - [`MazAnalyzer`] — Mazurkiewicz *reversible pairs*: conflicting
//!   pairs whose ordering is forced only by the direct conflict edge.
//!   These are the candidate backtracking points a stateless model
//!   checker (DPOR) explores.
//!
//! Two classic clock-free analyses are included for comparison and for
//! the broader application domains the paper cites:
//!
//! - [`LocksetDetector`] — Eraser-style lock-discipline checking (fast
//!   but imprecise; its false positives on fork/join-ordered code are
//!   the textbook motivation for clock-based detection);
//! - [`LockOrderAnalyzer`] — lock-order-inversion (deadlock candidate)
//!   detection.
//!
//! All analyzers are generic over the clock data structure, so the
//! paper's "PO + analysis" comparison is again a single type-parameter
//! swap.
//!
//! # Example
//!
//! ```rust
//! use tc_analysis::HbRaceDetector;
//! use tc_core::TreeClock;
//! use tc_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! b.write(0, "x");
//! b.write(1, "x"); // no synchronization in between: a data race
//! let trace = b.finish();
//!
//! let report = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
//! assert_eq!(report.total, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadlock;
pub mod epoch;
pub mod hb_race;
pub mod lockset;
pub mod maz_analysis;
pub mod report;
pub mod shb_race;

pub use deadlock::{DeadlockCandidate, LockOrderAnalyzer};
pub use epoch::{upcoming_epoch, ReadsSnapshot, VarHistories, VarHistory, VarHistorySnapshot};
pub use hb_race::HbRaceDetector;
pub use lockset::{LocksetDetector, LocksetViolation};
pub use maz_analysis::MazAnalyzer;
pub use report::{Race, RaceKind, RaceReport};
pub use shb_race::ShbRaceDetector;

// The race detectors and analyzers ride inside streaming sessions, so
// they must stay `Send` over every backend — compile-time asserted,
// three backends × three orders.
const _: () = {
    const fn assert_send<T: Send>() {}
    use tc_core::{HybridClock, TreeClock, VectorClock};
    assert_send::<HbRaceDetector<TreeClock>>();
    assert_send::<HbRaceDetector<VectorClock>>();
    assert_send::<HbRaceDetector<HybridClock>>();
    assert_send::<ShbRaceDetector<TreeClock>>();
    assert_send::<ShbRaceDetector<VectorClock>>();
    assert_send::<ShbRaceDetector<HybridClock>>();
    assert_send::<MazAnalyzer<TreeClock>>();
    assert_send::<MazAnalyzer<VectorClock>>();
    assert_send::<MazAnalyzer<HybridClock>>();
};
