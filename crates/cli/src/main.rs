//! `tcr` — trace tooling for tree-clock based concurrency analysis.
//!
//! ```text
//! USAGE:
//!   tcr gen --scenario NAME --threads K [--events N] [--seed S] -o FILE
//!   tcr gen --workload --threads K [--events N] [--sync PCT] [--seed S] -o FILE
//!   tcr stats FILE
//!   tcr race [--order hb|shb|maz] [--clock tc|vc] [--limit N] FILE
//!   tcr timestamps [--order hb|shb|maz] FILE
//!   tcr convert IN OUT
//!   tcr conformance [--full] [--filter NEEDLE] [--fault F] [--repro-dir DIR]
//!                   [--replay FILE]
//!   tcr bench [--json] [-o FILE] [--quick] [--trace FILE] [--check FILE]
//! ```
//!
//! Trace files ending in `.tctr` use the compact binary format; any
//! other extension uses the human-readable text format.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use tc_analysis::{HbRaceDetector, MazAnalyzer, RaceReport, ShbRaceDetector};
use tc_bench::baseline::{self, BaselineScale};
use tc_bench::render::TextTable;
use tc_bench::ClockKind;
use tc_conformance::{check_trace, run_sweep, Corpus, Fault, SweepOptions};
use tc_core::{HybridClock, TreeClock, VectorClock};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, ShbEngine};
use tc_stream::{
    phase_metric_name, AnyDetector, Checkpoint, ClockChoice, DetectorConfig, EpochPool,
    PhaseMetrics, ServeConfig, Server, Session, DEFAULT_MIN_PARALLEL_FRAME, PHASES,
};
use tc_telemetry::Registry;
use tc_trace::gen::{Scenario, WorkloadSpec};
use tc_trace::{binary_format, text_format, Event, EventReader, SessionValidator, Trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // No library panic may unwind out of the CLI: malformed input must
    // exit nonzero with a one-line diagnostic. `run` returns `Err` for
    // every anticipated failure; the hook + catch_unwind below keep
    // even an unanticipated panic (a library bug tripped by hostile
    // input) to one line on stderr.
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| run(&args)));
    let _ = panic::take_hook();
    match result {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            if e == "help" {
                eprint!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {e}");
                eprintln!("run `tcr --help` for usage");
                ExitCode::from(2)
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown internal error");
            eprintln!("error: internal failure: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("help".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "--help" | "-h" | "help" => Err("help".into()),
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "race" => cmd_race(rest),
        "timestamps" => cmd_timestamps(rest),
        "convert" => cmd_convert(rest),
        "conformance" => cmd_conformance(rest),
        "bench" => cmd_bench(rest),
        "stream" => cmd_stream(rest),
        "serve" => cmd_serve(rest),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Simple flag cursor over the remaining arguments.
struct Flags<'a> {
    positional: Vec<&'a str>,
}

/// `--name value` pairs collected while parsing a command line.
type FlagValues<'a> = Vec<(&'a str, &'a str)>;

impl<'a> Flags<'a> {
    /// Parses `args` into positional arguments and `--name [value]`
    /// pairs. Flags in `with_value` consume the next argument; flags in
    /// `boolean` stand alone; any other `--name` is an error (a
    /// misspelled `--ful` silently running the wrong sweep is worse
    /// than rejecting it).
    fn parse(
        args: &'a [String],
        with_value: &[&str],
        boolean: &[&str],
    ) -> Result<(Self, FlagValues<'a>), String> {
        let mut kv = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                if with_value.contains(&name) {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    kv.push((name, v.as_str()));
                    i += 2;
                } else if boolean.contains(&name) {
                    kv.push((name, ""));
                    i += 1;
                } else {
                    return Err(format!("unknown flag `--{name}`"));
                }
            } else if a == "-o" {
                let v = args.get(i + 1).ok_or("-o requires a value")?;
                kv.push(("out", v.as_str()));
                i += 2;
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok((Flags { positional }, kv))
    }
}

fn value<'a>(kv: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    kv.iter().rev().find(|(k, _)| *k == name).map(|(_, v)| *v)
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let trace = if path.ends_with(".tctr") {
        binary_format::read_binary(reader).map_err(|e| e.to_string())?
    } else {
        text_format::read_text(reader).map_err(|e| e.to_string())?
    };
    trace.validate().map_err(|e| e.to_string())?;
    Ok(trace)
}

fn store(trace: &Trace, path: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut writer = BufWriter::new(file);
    if path.ends_with(".tctr") {
        binary_format::write_binary(trace, &mut writer).map_err(|e| e.to_string())?;
    } else {
        text_format::write_text(trace, &mut writer).map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (_, kv) = Flags::parse(
        args,
        &[
            "scenario", "threads", "events", "seed", "sync", "locks", "vars", "out",
        ],
        &[],
    )?;
    let threads: u32 = value(&kv, "threads")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "invalid --threads")?;
    let events: usize = value(&kv, "events")
        .unwrap_or("100000")
        .parse()
        .map_err(|_| "invalid --events")?;
    let seed: u64 = value(&kv, "seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "invalid --seed")?;
    let out = value(&kv, "out").ok_or("gen requires -o FILE")?;

    let trace = if let Some(name) = value(&kv, "scenario") {
        let scenario: Scenario = name.parse()?;
        scenario.generate(threads, events, seed)
    } else {
        let sync_pct: f64 = value(&kv, "sync")
            .unwrap_or("9.5")
            .parse()
            .map_err(|_| "invalid --sync")?;
        WorkloadSpec {
            threads,
            events,
            seed,
            sync_ratio: (sync_pct / 100.0).clamp(0.0, 1.0),
            locks: value(&kv, "locks")
                .map(|v| v.parse().map_err(|_| "invalid --locks"))
                .transpose()?
                .unwrap_or(threads.max(1)),
            vars: value(&kv, "vars")
                .map(|v| v.parse().map_err(|_| "invalid --vars"))
                .transpose()?
                .unwrap_or(1024),
            ..WorkloadSpec::default()
        }
        .generate()
    };
    store(&trace, out)?;
    println!("wrote {} ({})", out, trace.stats());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (flags, _) = Flags::parse(args, &[], &[])?;
    let [path] = flags.positional[..] else {
        return Err("stats requires exactly one FILE".into());
    };
    let trace = load(path)?;
    let s = trace.stats();
    println!("trace     : {path}");
    println!("events    : {}", s.events);
    println!("threads   : {}", s.threads);
    println!("locks     : {}", s.locks);
    println!("variables : {}", s.vars);
    println!("sync      : {} ({:.1}%)", s.sync_events, s.sync_pct());
    println!(
        "reads     : {} / writes: {} ({:.1}%)",
        s.read_events,
        s.write_events,
        s.rw_pct()
    );
    Ok(())
}

fn cmd_race(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(args, &["order", "clock", "limit"], &[])?;
    let [path] = flags.positional[..] else {
        return Err("race requires exactly one FILE".into());
    };
    let order: PartialOrderKind = value(&kv, "order").unwrap_or("hb").parse()?;
    let clock: ClockKind = value(&kv, "clock").unwrap_or("tc").parse()?;
    let limit: usize = value(&kv, "limit")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "invalid --limit")?;
    let trace = load(path)?;

    let start = std::time::Instant::now();
    let report: RaceReport = match (order, clock) {
        (PartialOrderKind::Hb, ClockKind::Tree) => {
            HbRaceDetector::<TreeClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Hb, ClockKind::Vector) => {
            HbRaceDetector::<VectorClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Hb, ClockKind::Hybrid) => {
            HbRaceDetector::<HybridClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Shb, ClockKind::Tree) => {
            ShbRaceDetector::<TreeClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Shb, ClockKind::Vector) => {
            ShbRaceDetector::<VectorClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Shb, ClockKind::Hybrid) => {
            ShbRaceDetector::<HybridClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Maz, ClockKind::Tree) => {
            MazAnalyzer::<TreeClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Maz, ClockKind::Vector) => {
            MazAnalyzer::<VectorClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Maz, ClockKind::Hybrid) => {
            MazAnalyzer::<HybridClock>::new(&trace).run(&trace)
        }
    };
    let elapsed = start.elapsed();

    // Ignore write errors (e.g. a closed pipe when piping into `head`).
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "{order} analysis with {} clocks over {} events: {} in {:.3}s",
        clock.name(),
        trace.len(),
        report,
        elapsed.as_secs_f64()
    );
    for race in report.races.iter().take(limit) {
        let _ = writeln!(out, "  {race}");
    }
    if report.total as usize > limit {
        let _ = writeln!(out, "  ... and {} more", report.total as usize - limit);
    }
    Ok(())
}

fn cmd_timestamps(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(args, &["order"], &[])?;
    let [path] = flags.positional[..] else {
        return Err("timestamps requires exactly one FILE".into());
    };
    let order: PartialOrderKind = value(&kv, "order").unwrap_or("hb").parse()?;
    let trace = load(path)?;
    if trace.len() > 100_000 {
        return Err("refusing to print timestamps for traces over 100k events".into());
    }
    let ts = match order {
        PartialOrderKind::Hb => HbEngine::<TreeClock>::collect_timestamps(&trace),
        PartialOrderKind::Shb => ShbEngine::<TreeClock>::collect_timestamps(&trace),
        PartialOrderKind::Maz => MazEngine::<TreeClock>::collect_timestamps(&trace),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, (e, vt)) in trace.iter().zip(ts.iter()).enumerate() {
        writeln!(out, "{i:>6}  {e}  {vt}").map_err(|err| err.to_string())?;
    }
    Ok(())
}

fn cmd_conformance(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(
        args,
        &["filter", "fault", "repro-dir", "replay"],
        &["full", "no-shrink"],
    )?;
    if let Some(extra) = flags.positional.first() {
        return Err(format!(
            "conformance takes no positional argument `{extra}`"
        ));
    }
    if let Some(path) = value(&kv, "replay") {
        // Replay a previously dumped repro (or any trace file) through
        // the full checker, without the corpus.
        let fault: Fault = value(&kv, "fault").unwrap_or("none").parse()?;
        let trace = load(path)?;
        return match check_trace(&trace, fault) {
            Ok(summary) => {
                println!(
                    "ok   {path}: {} event(s), {} combination(s), {} report(s)",
                    summary.events, summary.combos, summary.races
                );
                Ok(())
            }
            Err(failure) => Err(format!("replay of {path} fails conformance: {failure}")),
        };
    }
    let full = value(&kv, "full").is_some();
    let shrink = value(&kv, "no-shrink").is_none();
    let fault: Fault = value(&kv, "fault").unwrap_or("none").parse()?;
    let corpus = if full {
        Corpus::full()
    } else {
        Corpus::quick()
    };
    let corpus = match value(&kv, "filter") {
        Some(needle) => {
            let c = corpus.filter(needle);
            if c.cases.is_empty() {
                return Err(format!("--filter {needle} matches no corpus case"));
            }
            c
        }
        None => corpus,
    };

    let start = std::time::Instant::now();
    let report = run_sweep(&corpus, SweepOptions { fault, shrink });
    let elapsed = start.elapsed();

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for outcome in &report.outcomes {
        let _ = writeln!(out, "{outcome}");
    }
    let _ = writeln!(out, "{report} in {:.2}s", elapsed.as_secs_f64());

    if let Some(dir) = value(&kv, "repro-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if let Err((_, Some(repro))) = &outcome.result {
                let path = Path::new(dir).join(format!("repro-{i}.trace"));
                std::fs::write(&path, &repro.text)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                let _ = writeln!(out, "wrote {}", path.display());
            }
        }
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} conformance failure(s)", report.failures()))
    }
}

/// Default output file of `tcr bench --json`. The number tracks the PR
/// that produced the baseline, so the repository accumulates a
/// `BENCH_*.json` perf trajectory over time.
const BENCH_JSON_DEFAULT: &str = "BENCH_10.json";

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(args, &["out", "trace", "check"], &["json", "quick", "full"])?;
    if let Some(extra) = flags.positional.first() {
        return Err(format!("bench takes no positional argument `{extra}`"));
    }

    // Validation-only mode: parse an existing baseline against the
    // schema (used by CI on the artifact it just produced).
    if let Some(path) = value(&kv, "check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let summary = baseline::validate(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "ok   {path}: {} record(s), {} configuration(s), tree <= vector wall time on {}, \
             hybrid within 2x of vector on {}",
            summary.records, summary.configs, summary.tree_wins, summary.hybrid_within_2x
        );
        return Ok(());
    }

    // Catch `-o` without `--json` *before* the minutes-long measurement:
    // the text mode writes no file, and silently dropping the flag would
    // surface only after the run.
    if value(&kv, "out").is_some() && value(&kv, "json").is_none() {
        return Err("bench -o FILE requires --json (the text table goes to stdout)".into());
    }

    let quick = value(&kv, "quick").is_some();
    let scale = if value(&kv, "full").is_some() {
        BaselineScale::full(quick)
    } else if quick {
        BaselineScale::quick()
    } else {
        BaselineScale::default_scale()
    };
    let (records, mode) = match value(&kv, "trace") {
        Some(path) => {
            let trace = load(path)?;
            eprintln!("bench: {path} ({} events)", trace.len());
            (baseline::collect_trace(path, &trace), "trace")
        }
        None => (
            baseline::collect(scale, |cell| eprintln!("bench: {cell}")),
            scale.mode,
        ),
    };

    if value(&kv, "json").is_some() {
        let out = value(&kv, "out").unwrap_or(BENCH_JSON_DEFAULT);
        // The generated-grid path measures all four record families;
        // `--trace FILE` stays an engine-only document (the extra
        // families describe generated workloads, not the loaded trace).
        let doc = if value(&kv, "trace").is_some() {
            tc_bench::BenchDoc {
                engine: records,
                ..tc_bench::BenchDoc::default()
            }
        } else {
            let ingest_scale = if quick {
                tc_bench::IngestScale::quick()
            } else {
                tc_bench::IngestScale::default_scale()
            };
            let parallel_scale = if quick {
                tc_bench::ParallelScale::quick()
            } else {
                tc_bench::ParallelScale::default_scale()
            };
            let (overhead_events, overhead_passes) = if quick { (30_000, 2) } else { (120_000, 3) };
            tc_bench::BenchDoc {
                engine: records,
                ingest: tc_bench::ingest::collect(ingest_scale, |cell| eprintln!("bench: {cell}")),
                suite: baseline::collect_suite_fold(|cell| eprintln!("bench: {cell}")),
                calibration: baseline::collect_calibration(|cell| eprintln!("bench: {cell}")),
                parallel: tc_bench::parallel::collect(parallel_scale, |cell| {
                    eprintln!("bench: {cell}")
                }),
                churn: baseline::collect_churn(|cell| eprintln!("bench: {cell}")),
                telemetry: vec![tc_bench::telemetry::collect_overhead(
                    overhead_events,
                    overhead_passes,
                    |cell| eprintln!("bench: {cell}"),
                )],
                phases: tc_bench::telemetry::collect_phases(parallel_scale, 2, |cell| {
                    eprintln!("bench: {cell}")
                }),
                cluster: tc_bench::cluster::collect(quick, |cell| eprintln!("bench: {cell}")),
                obs_period: baseline::collect_obs_period(|cell| eprintln!("bench: {cell}")),
            }
        };
        let json = baseline::to_json_doc(&doc, mode);
        let summary = baseline::validate(&json).map_err(|e| format!("produced baseline: {e}"))?;
        std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote {out}: {} record(s), {} configuration(s), tree <= vector wall time on {}, \
             hybrid within 2x of vector on {}, {} ingest / {} suite / {} calibration / {} \
             parallel / {} churn / {} telemetry / {} phase / {} cluster / {} obs-period \
             record(s), binary ingest at {:.1}x text, parallel detection at {:.2}x sequential, \
             telemetry tax {:.2}%, cluster forwarding tax {:.2}%, failover recovery {:.1}ms",
            summary.records,
            summary.configs,
            summary.tree_wins,
            summary.hybrid_within_2x,
            summary.ingest,
            summary.suite,
            summary.calibration,
            summary.parallel,
            summary.churn,
            summary.telemetry,
            summary.phase,
            summary.cluster,
            summary.obs_period,
            summary.binary_speedup,
            summary.parallel_speedup,
            summary.telemetry_overhead_pct,
            summary.cluster_forward_overhead_pct,
            summary.cluster_recovery_ms
        );
    } else {
        let mut t = TextTable::new([
            "scenario", "threads", "order", "backend", "seconds", "joins", "copies", "vt_work",
            "ds_work", "clock_kb",
        ])
        .with_title("Perf baseline (wall times are means over pooled repetitions)");
        for r in &records {
            t.row([
                r.scenario.clone(),
                r.threads.to_string(),
                r.order.to_string(),
                r.backend.name().to_owned(),
                format!("{:.6}", r.seconds),
                r.joins.to_string(),
                r.copies.to_string(),
                r.vt_work.to_string(),
                r.ds_work.to_string(),
                (r.peak_clock_bytes / 1024).to_string(),
            ]);
        }
        print!("{t}");
    }
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(
        args,
        &[
            "order",
            "clock",
            "evict",
            "limit",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "parallel",
            "trace-out",
        ],
        &["no-retire", "recycle", "profile"],
    )?;
    let [path] = flags.positional[..] else {
        return Err("stream requires exactly one FILE".into());
    };
    let order: PartialOrderKind = value(&kv, "order").unwrap_or("hb").parse()?;
    let clock: ClockChoice = value(&kv, "clock").unwrap_or("tc").parse()?;
    let limit: usize = value(&kv, "limit")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "invalid --limit")?;
    let checkpoint_path = value(&kv, "checkpoint");
    let checkpoint_every: Option<u64> = value(&kv, "checkpoint-every")
        .map(|v| v.parse().map_err(|_| "invalid --checkpoint-every"))
        .transpose()?;
    if checkpoint_every.is_some() && checkpoint_path.is_none() {
        return Err("--checkpoint-every requires --checkpoint FILE".into());
    }
    let parallel_workers: usize = value(&kv, "parallel")
        .map(|v| v.parse::<usize>().map_err(|_| "invalid --parallel"))
        .transpose()?
        .unwrap_or(0);
    let recycle = value(&kv, "recycle").is_some();
    if recycle && value(&kv, "no-retire").is_some() {
        return Err("--recycle requires join retirement; drop --no-retire".into());
    }
    let profile = value(&kv, "profile").is_some();
    let trace_out = value(&kv, "trace-out");
    if (profile || trace_out.is_some()) && parallel_workers == 0 {
        return Err(
            "--profile/--trace-out instrument the epoch-parallel pipeline; add --parallel N".into(),
        );
    }
    let mut config = DetectorConfig {
        order,
        retire_on_join: value(&kv, "no-retire").is_none(),
        evict_every: value(&kv, "evict")
            .map(|v| v.parse::<u64>().map_err(|_| "invalid --evict"))
            .transpose()?
            .map(|n| n.max(1)),
        recycle_slots: recycle,
    };

    let mut reader = EventReader::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (mut detector, mut validator) = match value(&kv, "resume") {
        Some(cp_path) => {
            // The checkpoint *is* the configuration; silently running a
            // different order/backend/policy than the flags asked for
            // would mislabel results.
            for conflicting in ["order", "clock", "evict", "no-retire", "recycle"] {
                if value(&kv, conflicting).is_some() {
                    return Err(format!(
                        "--resume restores the checkpoint's configuration; \
                         drop --{conflicting}"
                    ));
                }
            }
            let file = File::open(cp_path).map_err(|e| format!("cannot open {cp_path}: {e}"))?;
            let cp =
                Checkpoint::read(BufReader::new(file)).map_err(|e| format!("{cp_path}: {e}"))?;
            // The checkpoint carries the policy the session ran with.
            config = cp.config;
            reader
                .skip_events(cp.events)
                .map_err(|e| format!("cannot fast-forward {path}: {e}"))?;
            let validator = cp
                .validator
                .as_ref()
                .map(SessionValidator::from_snapshot)
                .unwrap_or_default();
            eprintln!(
                "resumed from {cp_path}: {} event(s) already ingested, {} race(s) so far",
                cp.events, cp.report.total
            );
            (AnyDetector::from_checkpoint(&cp), validator)
        }
        None => (AnyDetector::new(clock, config), SessionValidator::new()),
    };

    if parallel_workers > 0 {
        return stream_parallel(
            path,
            reader,
            detector,
            validator,
            parallel_workers,
            limit,
            checkpoint_path,
            checkpoint_every,
            profile,
            trace_out,
        );
    }

    let start = std::time::Instant::now();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut printed = 0usize;
    let mut reported_before = detector.report().races.len();
    loop {
        let event = match reader.next_event() {
            Ok(Some(e)) => e,
            Ok(None) => break,
            Err(e) => return Err(e.to_string()),
        };
        validator
            .check(&event)
            .map_err(|e| format!("{path}: {e}"))?;
        let at = detector.events();
        detector
            .feed(&event)
            .map_err(|e| format!("{path}: event {at}: {e}"))?;
        // Live emission: print races as they are found (up to --limit).
        let races = detector.report().races_since(reported_before);
        for race in races {
            if printed < limit {
                let _ = writeln!(out, "  [event {}] {race}", detector.events() - 1);
                printed += 1;
            }
        }
        reported_before = detector.report().races.len();
        if let (Some(every), Some(cp_path)) = (checkpoint_every, checkpoint_path) {
            if every > 0 && detector.events() % every == 0 {
                write_checkpoint(&detector, &validator, cp_path)?;
            }
        }
    }
    if let (None, Some(cp_path)) = (checkpoint_every, checkpoint_path) {
        // A final checkpoint when no interval was given.
        write_checkpoint(&detector, &validator, cp_path)?;
    }
    let elapsed = start.elapsed();
    let report = detector.report();
    if report.total as usize > printed {
        let _ = writeln!(out, "  ... and {} more", report.total as usize - printed);
    }
    let _ = writeln!(
        out,
        "{} streaming analysis with {} clocks over {} events: {} in {:.3}s",
        config.order,
        detector.backend_name(),
        detector.events(),
        report,
        elapsed.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "memory: threads={} retired={} evicted={} live_clock_bytes={} pool_bytes={} \
         live_threads={} total_threads={} recycled_slots={} peak_clock_bytes={}",
        detector.threads_seen(),
        detector.retired_count(),
        detector.evicted(),
        detector.clock_bytes(),
        detector.pool_bytes(),
        detector.live_threads(),
        detector.total_threads(),
        detector.recycled_slots(),
        detector.peak_clock_bytes(),
    );
    Ok(())
}

fn write_checkpoint(
    detector: &AnyDetector,
    validator: &SessionValidator,
    path: &str,
) -> Result<(), String> {
    let mut cp = detector.checkpoint();
    cp.validator = Some(validator.snapshot());
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut writer = BufWriter::new(file);
    cp.write(&mut writer).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())
}

/// Events per frame of the `--parallel` streaming path — a multiple of
/// the epoch scheduler's minimum so frames are worth splitting, small
/// enough that race emission and checkpoints stay responsive.
const STREAM_FRAME_EVENTS: usize = 4096;

/// The `tcr stream --parallel N` loop: events are batched into frames
/// and driven through the same epoch-parallel [`Session`] machinery the
/// service uses. Frames the scheduler cannot prove splittable fall back
/// to sequential feeding; either way reports and timestamps are
/// identical to the sequential path (conformance-enforced), so only
/// throughput and race-emission granularity change.
#[allow(clippy::too_many_arguments)]
fn stream_parallel(
    path: &str,
    mut reader: EventReader<BufReader<File>>,
    detector: AnyDetector,
    validator: SessionValidator,
    workers: usize,
    limit: usize,
    checkpoint_path: Option<&str>,
    checkpoint_every: Option<u64>,
    profile: bool,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let order = detector.config().order;
    let mut session = Session::from_parts(0, detector, validator);
    session.enable_parallel(
        Arc::new(EpochPool::new(workers)),
        DEFAULT_MIN_PARALLEL_FRAME,
    );
    // Only pay for phase telemetry when the run asked to see it; the
    // null registry hands out inert handles.
    let registry = if profile || trace_out.is_some() {
        Registry::new()
    } else {
        Registry::null()
    };
    session.set_phase_metrics(PhaseMetrics::new(&registry));

    let start = std::time::Instant::now();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut printed = 0usize;
    let mut reported_before = 0usize;
    let mut frames_fed = 0u64;
    let mut checkpoints_due = 0u64;
    let mut frame: Vec<Event> = Vec::with_capacity(STREAM_FRAME_EVENTS);
    let mut done = false;
    while !done {
        match reader.next_event() {
            Ok(Some(e)) => frame.push(e),
            Ok(None) => done = true,
            Err(e) => return Err(e.to_string()),
        }
        if frame.len() < STREAM_FRAME_EVENTS && (!done || frame.is_empty()) {
            continue;
        }
        // An invalid or rejected event fails the whole run, like the
        // sequential path — but only after its frame was fed, so the
        // error surfaces at frame granularity.
        let mut replies = String::new();
        session.handle_frame(&frame, &mut replies);
        frames_fed += 1;
        frame.clear();
        if let Some(first) = replies.lines().next() {
            return Err(format!("{path}: {}", first.trim_start_matches("err ")));
        }
        let report = session.detector().report();
        for race in report.races_since(reported_before) {
            if printed < limit {
                let _ = writeln!(out, "  [frame {}] {race}", frames_fed - 1);
                printed += 1;
            }
        }
        reported_before = report.races.len();
        if let (Some(every), Some(cp_path)) = (checkpoint_every, checkpoint_path) {
            let due = session.detector().events() / every.max(1);
            if every > 0 && due > checkpoints_due {
                checkpoints_due = due;
                write_session_checkpoint(&session, cp_path)?;
            }
        }
    }
    if let (None, Some(cp_path)) = (checkpoint_every, checkpoint_path) {
        write_session_checkpoint(&session, cp_path)?;
    }
    let elapsed = start.elapsed();
    let d = session.detector();
    let report = d.report();
    if report.total as usize > printed {
        let _ = writeln!(out, "  ... and {} more", report.total as usize - printed);
    }
    let _ = writeln!(
        out,
        "{} streaming analysis with {} clocks over {} events: {} in {:.3}s \
         ({} of {} frame(s) epoch-parallel across {} worker(s))",
        order,
        d.backend_name(),
        d.events(),
        report,
        elapsed.as_secs_f64(),
        session.parallel_frames(),
        frames_fed,
        workers,
    );
    let _ = writeln!(
        out,
        "memory: threads={} retired={} evicted={} live_clock_bytes={} pool_bytes={} \
         live_threads={} total_threads={} recycled_slots={} peak_clock_bytes={}",
        d.threads_seen(),
        d.retired_count(),
        d.evicted(),
        d.clock_bytes(),
        d.pool_bytes(),
        d.live_threads(),
        d.total_threads(),
        d.recycled_slots(),
        d.peak_clock_bytes(),
    );
    if profile {
        let mut table =
            TextTable::new(["phase", "count", "total_ms", "mean_us", "p50", "p95", "p99"])
                .with_title("epoch-parallel phase breakdown (microseconds)");
        for phase in PHASES {
            let snap = registry.histogram_snapshot(&phase_metric_name(phase));
            let mean = if snap.count > 0 {
                snap.sum as f64 / snap.count as f64
            } else {
                0.0
            };
            table.row([
                phase.to_owned(),
                snap.count.to_string(),
                format!("{:.3}", snap.sum as f64 / 1000.0),
                format!("{mean:.1}"),
                snap.quantile(0.5).to_string(),
                snap.quantile(0.95).to_string(),
                snap.quantile(0.99).to_string(),
            ]);
        }
        let _ = write!(out, "{table}");
    }
    if let Some(trace_path) = trace_out {
        std::fs::write(trace_path, registry.chrome_trace())
            .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
        let _ = writeln!(
            out,
            "chrome trace written to {trace_path} (load in chrome://tracing or Perfetto)"
        );
    }
    Ok(())
}

fn write_session_checkpoint(session: &Session, path: &str) -> Result<(), String> {
    let cp = session.checkpoint();
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut writer = BufWriter::new(file);
    cp.write(&mut writer).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(
        args,
        &[
            "addr",
            "port",
            "workers",
            "parallel-sessions",
            "auth",
            "node",
            "peers",
            "delta-every",
        ],
        &["smoke", "cluster"],
    )?;
    if let Some(extra) = flags.positional.first() {
        return Err(format!("serve takes no positional argument `{extra}`"));
    }
    if value(&kv, "cluster").is_some() {
        return serve_cluster(&kv);
    }
    for flag in ["node", "peers", "delta-every"] {
        if value(&kv, flag).is_some() {
            return Err(format!("--{flag} requires --cluster"));
        }
    }
    let addr = match (value(&kv, "addr"), value(&kv, "port")) {
        (Some(addr), None) => addr.to_owned(),
        (None, port) => format!("127.0.0.1:{}", port.unwrap_or("7147")),
        (Some(_), Some(_)) => return Err("pass --addr or --port, not both".into()),
    };
    if value(&kv, "smoke").is_some() {
        tc_stream::smoke()?;
        println!(
            "serve smoke ok: three concurrent sessions (two text, one batched \
             binary frames) matched the batch detectors and the server shut \
             down cleanly with a client still connected"
        );
        return Ok(());
    }
    let workers: usize = value(&kv, "workers")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "invalid --workers")?;
    let parallel: usize = value(&kv, "parallel-sessions")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "invalid --parallel-sessions")?;
    let auth = value(&kv, "auth").map(str::to_owned);
    let server = Server::start(ServeConfig {
        addr,
        workers,
        parallel,
        telemetry: true,
        auth,
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let parallel_note = if parallel > 0 {
        format!("; large binary frames split across {parallel} epoch worker(s) per session")
    } else {
        String::new()
    };
    println!(
        "tcr serve: listening on {} with {workers} work-stealing worker(s){parallel_note}; \
         open a TCP connection and speak the line protocol \
         (`open <order> <clock>`, then event lines) or stream batched \
         binary frames to session ids; `shutdown` stops the server",
        server.local_addr()
    );
    server.join();
    println!("tcr serve: shut down");
    Ok(())
}

/// The `serve --cluster` path: one node of a static multi-node ring.
/// Sessions are placed by consistent hash, any node forwards for any
/// session, and owners stream checkpoint deltas to their ring
/// successor so a crashed node's sessions resume elsewhere with
/// byte-identical reports.
fn serve_cluster(kv: &FlagValues<'_>) -> Result<(), String> {
    use tc_cluster::{ClusterConfig, ClusterServer};
    if value(kv, "addr").is_some() || value(kv, "port").is_some() {
        return Err("--cluster binds the --peers entry for --node; drop --addr/--port".into());
    }
    if value(kv, "workers").is_some() || value(kv, "parallel-sessions").is_some() {
        return Err("--workers/--parallel-sessions do not apply to --cluster nodes".into());
    }
    let peers: Vec<String> = value(kv, "peers")
        .ok_or("--cluster requires --peers host:port,host:port,... (one entry per node)")?
        .split(',')
        .map(|s| s.trim().to_owned())
        .collect();
    if peers.len() < 2 || peers.iter().any(String::is_empty) {
        return Err("--peers needs at least two non-empty host:port entries".into());
    }
    let node: u32 = value(kv, "node")
        .ok_or("--cluster requires --node I (this node's index into --peers)")?
        .parse()
        .map_err(|_| "invalid --node")?;
    if node as usize >= peers.len() {
        return Err(format!(
            "--node {node} is out of range for {} peer(s)",
            peers.len()
        ));
    }
    let delta_every: u64 = value(kv, "delta-every")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "invalid --delta-every")?;
    if delta_every == 0 {
        return Err("--delta-every must be >= 1".into());
    }
    let config = ClusterConfig {
        nodes: peers.len(),
        me: node,
        delta_every,
        auth: value(kv, "auth").map(str::to_owned),
        telemetry: true,
    };
    let addr = peers[node as usize].clone();
    let nodes_total = peers.len();
    let server = ClusterServer::start(&addr, peers, config)
        .map_err(|e| format!("cannot start cluster node {node} on {addr}: {e}"))?;
    println!(
        "tcr serve --cluster: node {node} of {nodes_total} listening on {}; sessions \
         place by consistent hash, every node forwards for every session, and owners \
         ship checkpoint deltas to their ring successor every {delta_every} payload(s); \
         `shutdown` stops this node (survivors fail its sessions over)",
        server.local_addr()
    );
    server.join();
    println!("tcr serve --cluster: node {node} shut down");
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let (flags, _) = Flags::parse(args, &[], &[])?;
    let [input, output] = flags.positional[..] else {
        return Err("convert requires IN and OUT files".into());
    };
    let trace = load(input)?;
    store(&trace, output)?;
    println!("converted {input} -> {output} ({} events)", trace.len());
    Ok(())
}

const USAGE: &str = "\
tcr — trace tooling for tree-clock based concurrency analysis

USAGE:
  tcr gen --scenario NAME --threads K [--events N] [--seed S] -o FILE
  tcr gen --threads K [--events N] [--sync PCT] [--locks L] [--vars V] -o FILE
  tcr stats FILE
  tcr race [--order hb|shb|maz] [--clock tc|vc|hc] [--limit N] FILE
  tcr timestamps [--order hb|shb|maz] FILE
  tcr convert IN OUT
  tcr conformance [--full] [--filter NEEDLE] [--fault F] [--no-shrink]
                  [--repro-dir DIR] [--replay FILE]
  tcr bench [--json] [-o FILE] [--quick] [--full] [--trace FILE]
            [--check FILE]
  tcr stream FILE [--order hb|shb|maz] [--clock tc|vc|hc] [--limit N]
             [--evict N] [--no-retire] [--recycle] [--checkpoint FILE]
             [--checkpoint-every N] [--resume FILE] [--parallel N]
             [--profile] [--trace-out FILE]
  tcr serve [--port P | --addr A] [--workers N]
            [--parallel-sessions N] [--auth TOKEN] [--smoke]
  tcr serve --cluster --node I --peers A,B,C [--delta-every N]
            [--auth TOKEN]

Scenarios: single-lock, skewed-locks, star, pairwise, fork-join-tree,
barrier-phases, pipeline, read-mostly, bursty-channels,
spawn-join-churn.
Clocks: tc (tree), vc (vector), hc (adaptive flat/tree hybrid).
Files ending in .tctr use the binary format; others the text format.

conformance runs every corpus trace through the HB/SHB/MAZ engines with
all three clock backends and cross-checks timestamps, race reports and
work metrics against the O(n^2) definitional oracles. Failures are
shrunk to minimal text-format repros (written to --repro-dir if given).
--replay re-checks a dumped repro file instead of the corpus. --fault
injects a deliberate result perturbation (drop-race, skew-timestamp,
inflate-work, each optionally :hb/:shb/:maz) to demo the pipeline.

bench records the perf baseline: FIG10 scenarios x HB/SHB/MAZ x
tree/vector/hybrid, with wall time, operation counts, VTWork/DSWork,
peak clock bytes and pool telemetry. --full folds the five structured
workload families into the grid (at a budgeted size). --json writes the
schema-stable BENCH_10.json (or -o FILE), which additionally carries
ingest-throughput records (events/sec through the live serve socket
path, text vs binary x single-session vs 1000-session fan-in via
multi-session frames + stats-all), the 39-entry synthetic suite's
per-backend wall times, the hybrid's dense-cutoff calibration cells,
epoch-parallel detection cells (backend x worker count against a
sequential baseline), the telemetry-overhead A/B (live registry vs
NullRecorder ingest rate), the epoch-parallel per-phase latency
summary, the cluster cells (gateway-forwarding tax, crash-to-promoted
failover latency, stable-prefix delta-GC byte counts) and the hybrid's
tree-observation-period A/B; --check validates an existing baseline;
--trace benches one trace file (engine records only).

stream analyzes FILE incrementally (chunked reads, nothing
materialized), printing races as they are found, with bounded memory:
thread clocks retire to the pool at join, and --evict N releases
dominated lock/variable clocks every N events (requires fork
discipline). --recycle routes thread ids through an identity map so
retired threads' clock slots are reused once every live clock
dominates them — clock width stays O(live threads) under spawn/join
churn, with identical races and timestamps. --checkpoint writes a resumable snapshot (periodically
with --checkpoint-every); --resume FILE fast-forwards past a
checkpoint's events and continues with byte-identical reports.
--parallel N batches events into frames and splits each frame into
conflict-free epochs fanned across N workers — same reports and
timestamps, higher throughput on epoch-rich traces. --profile prints a
per-phase latency table (partition/scatter/execute/gather/barrier) for
the parallel pipeline; --trace-out FILE dumps the recorded phase spans
as chrome://tracing JSON (load in chrome://tracing or Perfetto). Both
require --parallel.

serve runs the multi-client analysis service: a nonblocking ingest
core feeding a work-stealing worker pool, each session an independent
streaming detector. Text protocol: `open <order> <clock> [evict <n>]
[no-retire] [recycle]` or `resume <checkpoint>`, then text-format event lines;
`poll`/`races` report found races, `stats` one key=value line
(per-session detector fields plus server-scope uptime, connection and
wire-error counts), `timestamp <thread>`, `checkpoint <path>`, `use
<id>` rebinds to an earlier session, `close`, `shutdown`; `stats-all`
aggregates every session the connection opened in one reply; `metrics`
returns the full Prometheus-style exposition (counters, gauges,
latency summaries; terminated by `# EOF`) — it needs no handshake, so
`printf 'metrics\\n' | nc HOST PORT` scrapes a live server. Binary protocol (same
port, sniffed by first byte): length-prefixed frames batching events
for an explicit session id — or one multi-session frame carrying
batches for many ids — so one connection can fan into many sessions.
--parallel-sessions N shares an N-worker epoch pool across sessions,
splitting each large binary frame into conflict-free epochs.
--smoke runs the self-test: three concurrent sessions (two text, one
binary) driven over real sockets, asserted equal to the batch
detectors (what `tcr race` runs), then a shutdown with a client still
connected. --auth TOKEN gates `shutdown` (and the cluster admin
commands) behind a shared secret compared in constant time; clients
authenticate with `auth <token>`. In cluster mode the same token
(identical on every node) also authenticates inter-node links, so
unauthenticated connections cannot speak the peer protocol.

serve --cluster runs one node of a static multi-node ring instead:
--peers lists every node's host:port (comma-separated, index = node
id) and --node says which entry this process is; the node binds its
own entry. Sessions are placed by consistent hash of their id, any
node transparently forwards lines and frames for sessions it does not
own (persistent FIFO inter-node links), and each owner streams
periodic TCCP checkpoint deltas (every --delta-every payloads, rsync
style against the last stable base) plus every in-flight frame to its
ring successor. A node death — detected by missed heartbeats — makes
the successor resume from the last checkpoint and replay the tail, so
clients reconnect to any survivor, `use <id>` their session, and read
race reports identical to an uninterrupted run. Eviction is permanent
(crash-stop model); a node mis-declared dead learns of its eviction
from peers and fences itself off by shutting down. A per-node matrix
clock tracks which deltas every peer has applied; only prefixes stable
across the ring are promoted to delta bases, which is what keeps the
shipped delta bytes bounded by the raw checkpoint bytes they replace.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcr-test-{}-{label}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn no_args_shows_help() {
        assert_eq!(run(&[]), Err("help".to_owned()));
        assert_eq!(run(&args(&["--help"])), Err("help".to_owned()));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn gen_requires_output() {
        let e = run(&args(&["gen", "--threads", "4"])).unwrap_err();
        assert!(e.contains("-o"));
    }

    #[test]
    fn gen_stats_race_convert_round_trip() {
        let dir = temp_dir("roundtrip");
        let bin = dir.join("t.tctr");
        let txt = dir.join("t.trace");
        let bin_s = bin.to_str().unwrap();
        let txt_s = txt.to_str().unwrap();

        // Generate a star trace in binary format.
        run(&args(&[
            "gen",
            "--scenario",
            "star",
            "--threads",
            "8",
            "--events",
            "2000",
            "-o",
            bin_s,
        ]))
        .unwrap();
        assert!(bin.exists());

        // Inspect, analyze and convert it.
        run(&args(&["stats", bin_s])).unwrap();
        run(&args(&["race", "--order", "hb", "--clock", "tc", bin_s])).unwrap();
        run(&args(&["race", "--order", "maz", "--clock", "vc", bin_s])).unwrap();
        run(&args(&["convert", bin_s, txt_s])).unwrap();
        assert!(txt.exists());

        // The text round trip parses and matches in size.
        let t1 = load(bin_s).unwrap();
        let t2 = load(txt_s).unwrap();
        assert_eq!(t1.len(), t2.len());

        // Timestamps print for small traces.
        run(&args(&["timestamps", "--order", "shb", txt_s])).unwrap();

        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn gen_workload_respects_flags() {
        let dir = temp_dir("workload");
        let path = dir.join("w.trace");
        let p = path.to_str().unwrap();
        run(&args(&[
            "gen",
            "--threads",
            "6",
            "--events",
            "3000",
            "--sync",
            "30",
            "--locks",
            "2",
            "--vars",
            "9",
            "-o",
            p,
        ]))
        .unwrap();
        let t = load(p).unwrap();
        assert_eq!(t.thread_count(), 6);
        assert!(t.lock_count() <= 2);
        assert!(t.var_count() <= 9);
        let sync = t.stats().sync_pct();
        assert!(sync > 10.0 && sync < 60.0, "sync% {sync} out of band");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn invalid_trace_files_error_cleanly() {
        let dir = temp_dir("badfile");
        let path = dir.join("bad.trace");
        std::fs::write(&path, "t0 rel m\n").unwrap(); // release without acquire
        let e = run(&args(&["stats", path.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("invalid trace"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn conformance_quick_filter_passes() {
        // A filtered slice keeps the CLI test fast; the full quick sweep
        // runs in the tc-conformance crate's own tests.
        run(&args(&["conformance", "--filter", "star"])).unwrap();
    }

    #[test]
    fn conformance_detects_injected_fault_and_writes_repro() {
        let dir = temp_dir("conformance");
        let repro_dir = dir.join("repros");
        let e = run(&args(&[
            "conformance",
            "--filter",
            "workload-s0-v3",
            "--fault",
            "drop-race:hb",
            "--repro-dir",
            repro_dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(e.contains("failure"), "unexpected error: {e}");
        let repro = repro_dir.join("repro-0.trace");
        assert!(repro.exists(), "repro file missing");
        let text = std::fs::read_to_string(&repro).unwrap();
        assert!(text.contains("# conformance repro"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn conformance_rejects_bad_flags() {
        assert!(run(&args(&["conformance", "--fault", "explode"])).is_err());
        assert!(run(&args(&["conformance", "--filter", "no-such-case"])).is_err());
        assert!(run(&args(&["conformance", "positional"])).is_err());
        // Misspelled boolean flags must error, not silently run the
        // wrong sweep.
        let e = run(&args(&["conformance", "--ful"])).unwrap_err();
        assert!(e.contains("unknown flag"), "unexpected error: {e}");
        assert!(run(&args(&["gen", "--quick", "-o", "/tmp/x.trace"])).is_err());
    }

    #[test]
    fn gen_accepts_new_scenario_families() {
        let dir = temp_dir("families");
        for name in ["fork-join-tree", "pipeline"] {
            let path = dir.join(format!("{name}.trace"));
            run(&args(&[
                "gen",
                "--scenario",
                name,
                "--threads",
                "4",
                "--events",
                "300",
                "-o",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            let t = load(path.to_str().unwrap()).unwrap();
            assert_eq!(t.thread_count(), 4);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = run(&args(&["stats", "/definitely/not/here.trace"])).unwrap_err();
        assert!(e.contains("cannot open"));
    }

    #[test]
    fn missing_or_malformed_traces_error_cleanly_on_every_subcommand() {
        // Audit: no subcommand taking a trace file may unwind on a
        // missing or malformed input — each must return a diagnostic.
        let missing = "/definitely/not/here.trace";
        for cmd in [
            vec!["stats", missing],
            vec!["race", missing],
            vec!["timestamps", missing],
            vec!["convert", missing, "/tmp/out.trace"],
            vec!["conformance", "--replay", missing],
            vec!["bench", "--trace", missing],
            vec!["bench", "--check", missing],
        ] {
            let e = run(&args(&cmd)).unwrap_err();
            assert!(e.contains("cannot"), "cmd {cmd:?} gave `{e}`");
        }

        let dir = temp_dir("malformed");
        let bad = dir.join("bad.trace");
        std::fs::write(&bad, "t0 garbage-op x\n").unwrap();
        let bad_s = bad.to_str().unwrap();
        for cmd in [
            vec!["stats", bad_s],
            vec!["race", bad_s],
            vec!["conformance", "--replay", bad_s],
            vec!["bench", "--trace", bad_s],
        ] {
            assert!(run(&args(&cmd)).is_err(), "cmd {cmd:?} accepted garbage");
        }
        // A truncated binary file must also fail cleanly.
        let bad_bin = dir.join("bad.tctr");
        std::fs::write(&bad_bin, [0x54u8, 0x43, 0x54]).unwrap();
        assert!(run(&args(&["stats", bad_bin.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn conformance_replay_round_trips_a_repro() {
        let dir = temp_dir("replay");
        let repro_dir = dir.join("repros");
        // Produce a repro via an injected fault...
        run(&args(&[
            "conformance",
            "--filter",
            "workload-s0-v3",
            "--fault",
            "drop-race:hb",
            "--repro-dir",
            repro_dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        let repro = repro_dir.join("repro-0.trace");
        let repro_s = repro.to_str().unwrap();
        // ...an honest replay passes, a faulty replay reproduces.
        run(&args(&["conformance", "--replay", repro_s])).unwrap();
        let e = run(&args(&[
            "conformance",
            "--replay",
            repro_s,
            "--fault",
            "drop-race:hb",
        ]))
        .unwrap_err();
        assert!(e.contains("fails conformance"), "unexpected: {e}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bench_json_writes_validates_and_rechecks() {
        let dir = temp_dir("bench");
        let trace = dir.join("t.trace");
        let out = dir.join("baseline.json");
        run(&args(&[
            "gen",
            "--scenario",
            "star",
            "--threads",
            "6",
            "--events",
            "1500",
            "-o",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "bench",
            "--json",
            "--trace",
            trace.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        // The produced file passes the schema check...
        run(&args(&["bench", "--check", out.to_str().unwrap()])).unwrap();
        // ...and a corrupted copy does not.
        let text = std::fs::read_to_string(&out).unwrap();
        std::fs::write(&out, text.replace("\"seconds\"", "\"sceonds\"")).unwrap();
        let e = run(&args(&["bench", "--check", out.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("seconds"), "error must name the field: {e}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bench_text_table_prints_for_a_tiny_trace() {
        let dir = temp_dir("bench-text");
        let trace = dir.join("t.trace");
        run(&args(&[
            "gen",
            "--scenario",
            "pairwise",
            "--threads",
            "4",
            "--events",
            "800",
            "-o",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&["bench", "--trace", trace.to_str().unwrap()])).unwrap();
        assert!(run(&args(&["bench", "positional"])).is_err());
        // -o without --json must be rejected up front, not ignored.
        let e = run(&args(&[
            "bench",
            "--trace",
            trace.to_str().unwrap(),
            "-o",
            "/tmp/ignored.json",
        ]))
        .unwrap_err();
        assert!(e.contains("--json"), "unexpected: {e}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stream_matches_race_and_checkpoint_resume_continues() {
        let dir = temp_dir("stream");
        let trace = dir.join("t.trace");
        let trace_s = trace.to_str().unwrap();
        run(&args(&[
            "gen",
            "--threads",
            "5",
            "--events",
            "2000",
            "--sync",
            "10",
            "--vars",
            "4",
            "-o",
            trace_s,
        ]))
        .unwrap();
        // Batch and streaming agree (asserted library-side; here the
        // CLI paths must simply both succeed on the same file).
        run(&args(&["race", "--order", "shb", "--clock", "hc", trace_s])).unwrap();
        run(&args(&[
            "stream", "--order", "shb", "--clock", "hc", "--limit", "5", trace_s,
        ]))
        .unwrap();

        // Periodic checkpoints, then a resume that finishes the file.
        let cp = dir.join("session.tccp");
        let cp_s = cp.to_str().unwrap();
        run(&args(&[
            "stream",
            "--checkpoint",
            cp_s,
            "--checkpoint-every",
            "500",
            trace_s,
        ]))
        .unwrap();
        assert!(cp.exists(), "periodic checkpoint file missing");
        run(&args(&["stream", "--resume", cp_s, trace_s])).unwrap();

        // --resume restores the checkpoint's configuration; explicit
        // order/clock/policy flags alongside it are rejected, not
        // silently ignored.
        let e = run(&args(&[
            "stream", "--resume", cp_s, "--order", "shb", trace_s,
        ]))
        .unwrap_err();
        assert!(e.contains("drop --order"), "{e}");

        // A corrupted checkpoint errors cleanly.
        std::fs::write(&cp, b"garbage").unwrap();
        let e = run(&args(&["stream", "--resume", cp_s, trace_s])).unwrap_err();
        assert!(e.contains("checkpoint") || e.contains("magic"), "{e}");

        // Flag validation.
        let e = run(&args(&["stream", "--checkpoint-every", "10", trace_s])).unwrap_err();
        assert!(e.contains("--checkpoint"), "{e}");
        assert!(run(&args(&["stream"])).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stream_parallel_analyzes_checkpoints_and_resumes() {
        let dir = temp_dir("stream-parallel");
        let trace = dir.join("t.trace");
        let trace_s = trace.to_str().unwrap();
        run(&args(&[
            "gen",
            "--threads",
            "8",
            "--events",
            "6000",
            "--sync",
            "5",
            "--vars",
            "32",
            "-o",
            trace_s,
        ]))
        .unwrap();
        // The epoch-parallel path completes on the same file the
        // sequential path handles (equivalence is library-enforced).
        run(&args(&["stream", "--parallel", "2", trace_s])).unwrap();

        // Checkpoints work at frame granularity, and a resumed session
        // can itself run parallel.
        let cp = dir.join("par.tccp");
        let cp_s = cp.to_str().unwrap();
        run(&args(&[
            "stream",
            "--parallel",
            "2",
            "--checkpoint",
            cp_s,
            "--checkpoint-every",
            "2000",
            trace_s,
        ]))
        .unwrap();
        assert!(cp.exists(), "parallel checkpoint file missing");
        run(&args(&[
            "stream",
            "--resume",
            cp_s,
            "--parallel",
            "2",
            trace_s,
        ]))
        .unwrap();

        let e = run(&args(&["stream", "--parallel", "many", trace_s])).unwrap_err();
        assert!(e.contains("--parallel"), "{e}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn serve_smoke_runs_end_to_end() {
        run(&args(&["serve", "--smoke"])).unwrap();
        // Flag validation without starting a server.
        assert!(run(&args(&["serve", "positional"])).is_err());
        let e = run(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--port",
            "1",
            "--smoke",
        ]))
        .unwrap_err();
        assert!(e.contains("not both") || e.contains("smoke"), "{e}");
    }

    #[test]
    fn bad_order_and_clock_are_rejected() {
        let dir = temp_dir("badflags");
        let path = dir.join("t.trace");
        std::fs::write(&path, "t0 w x\n").unwrap();
        let p = path.to_str().unwrap();
        assert!(run(&args(&["race", "--order", "cp", p])).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
