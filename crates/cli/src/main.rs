//! `tcr` — trace tooling for tree-clock based concurrency analysis.
//!
//! ```text
//! USAGE:
//!   tcr gen --scenario NAME --threads K [--events N] [--seed S] -o FILE
//!   tcr gen --workload --threads K [--events N] [--sync PCT] [--seed S] -o FILE
//!   tcr stats FILE
//!   tcr race [--order hb|shb|maz] [--clock tc|vc] [--limit N] FILE
//!   tcr timestamps [--order hb|shb|maz] FILE
//!   tcr convert IN OUT
//!   tcr conformance [--full] [--filter NEEDLE] [--fault F] [--repro-dir DIR]
//! ```
//!
//! Trace files ending in `.tctr` use the compact binary format; any
//! other extension uses the human-readable text format.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::process::ExitCode;

use tc_analysis::{HbRaceDetector, MazAnalyzer, RaceReport, ShbRaceDetector};
use tc_conformance::{run_sweep, Corpus, Fault, SweepOptions};
use tc_core::{TreeClock, VectorClock};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, ShbEngine};
use tc_trace::gen::{Scenario, WorkloadSpec};
use tc_trace::{binary_format, text_format, Trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if e == "help" {
                eprint!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {e}");
                eprintln!("run `tcr --help` for usage");
                ExitCode::from(2)
            }
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("help".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "--help" | "-h" | "help" => Err("help".into()),
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "race" => cmd_race(rest),
        "timestamps" => cmd_timestamps(rest),
        "convert" => cmd_convert(rest),
        "conformance" => cmd_conformance(rest),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Simple flag cursor over the remaining arguments.
struct Flags<'a> {
    positional: Vec<&'a str>,
}

/// `--name value` pairs collected while parsing a command line.
type FlagValues<'a> = Vec<(&'a str, &'a str)>;

impl<'a> Flags<'a> {
    /// Parses `args` into positional arguments and `--name [value]`
    /// pairs. Flags in `with_value` consume the next argument; flags in
    /// `boolean` stand alone; any other `--name` is an error (a
    /// misspelled `--ful` silently running the wrong sweep is worse
    /// than rejecting it).
    fn parse(
        args: &'a [String],
        with_value: &[&str],
        boolean: &[&str],
    ) -> Result<(Self, FlagValues<'a>), String> {
        let mut kv = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                if with_value.contains(&name) {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    kv.push((name, v.as_str()));
                    i += 2;
                } else if boolean.contains(&name) {
                    kv.push((name, ""));
                    i += 1;
                } else {
                    return Err(format!("unknown flag `--{name}`"));
                }
            } else if a == "-o" {
                let v = args.get(i + 1).ok_or("-o requires a value")?;
                kv.push(("out", v.as_str()));
                i += 2;
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok((Flags { positional }, kv))
    }
}

fn value<'a>(kv: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    kv.iter().rev().find(|(k, _)| *k == name).map(|(_, v)| *v)
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let trace = if path.ends_with(".tctr") {
        binary_format::read_binary(reader).map_err(|e| e.to_string())?
    } else {
        text_format::read_text(reader).map_err(|e| e.to_string())?
    };
    trace.validate().map_err(|e| e.to_string())?;
    Ok(trace)
}

fn store(trace: &Trace, path: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut writer = BufWriter::new(file);
    if path.ends_with(".tctr") {
        binary_format::write_binary(trace, &mut writer).map_err(|e| e.to_string())?;
    } else {
        text_format::write_text(trace, &mut writer).map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (_, kv) = Flags::parse(
        args,
        &[
            "scenario", "threads", "events", "seed", "sync", "locks", "vars", "out",
        ],
        &[],
    )?;
    let threads: u32 = value(&kv, "threads")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "invalid --threads")?;
    let events: usize = value(&kv, "events")
        .unwrap_or("100000")
        .parse()
        .map_err(|_| "invalid --events")?;
    let seed: u64 = value(&kv, "seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "invalid --seed")?;
    let out = value(&kv, "out").ok_or("gen requires -o FILE")?;

    let trace = if let Some(name) = value(&kv, "scenario") {
        let scenario: Scenario = name.parse()?;
        scenario.generate(threads, events, seed)
    } else {
        let sync_pct: f64 = value(&kv, "sync")
            .unwrap_or("9.5")
            .parse()
            .map_err(|_| "invalid --sync")?;
        WorkloadSpec {
            threads,
            events,
            seed,
            sync_ratio: (sync_pct / 100.0).clamp(0.0, 1.0),
            locks: value(&kv, "locks")
                .map(|v| v.parse().map_err(|_| "invalid --locks"))
                .transpose()?
                .unwrap_or(threads.max(1)),
            vars: value(&kv, "vars")
                .map(|v| v.parse().map_err(|_| "invalid --vars"))
                .transpose()?
                .unwrap_or(1024),
            ..WorkloadSpec::default()
        }
        .generate()
    };
    store(&trace, out)?;
    println!("wrote {} ({})", out, trace.stats());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (flags, _) = Flags::parse(args, &[], &[])?;
    let [path] = flags.positional[..] else {
        return Err("stats requires exactly one FILE".into());
    };
    let trace = load(path)?;
    let s = trace.stats();
    println!("trace     : {path}");
    println!("events    : {}", s.events);
    println!("threads   : {}", s.threads);
    println!("locks     : {}", s.locks);
    println!("variables : {}", s.vars);
    println!("sync      : {} ({:.1}%)", s.sync_events, s.sync_pct());
    println!(
        "reads     : {} / writes: {} ({:.1}%)",
        s.read_events,
        s.write_events,
        s.rw_pct()
    );
    Ok(())
}

fn cmd_race(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(args, &["order", "clock", "limit"], &[])?;
    let [path] = flags.positional[..] else {
        return Err("race requires exactly one FILE".into());
    };
    let order: PartialOrderKind = value(&kv, "order").unwrap_or("hb").parse()?;
    let clock = value(&kv, "clock").unwrap_or("tc");
    let limit: usize = value(&kv, "limit")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "invalid --limit")?;
    let trace = load(path)?;

    let start = std::time::Instant::now();
    let report: RaceReport = match (order, clock) {
        (PartialOrderKind::Hb, "tc" | "tree") => {
            HbRaceDetector::<TreeClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Hb, _) => HbRaceDetector::<VectorClock>::new(&trace).run(&trace),
        (PartialOrderKind::Shb, "tc" | "tree") => {
            ShbRaceDetector::<TreeClock>::new(&trace).run(&trace)
        }
        (PartialOrderKind::Shb, _) => ShbRaceDetector::<VectorClock>::new(&trace).run(&trace),
        (PartialOrderKind::Maz, "tc" | "tree") => MazAnalyzer::<TreeClock>::new(&trace).run(&trace),
        (PartialOrderKind::Maz, _) => MazAnalyzer::<VectorClock>::new(&trace).run(&trace),
    };
    let elapsed = start.elapsed();

    // Ignore write errors (e.g. a closed pipe when piping into `head`).
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "{order} analysis with {} clocks over {} events: {} in {:.3}s",
        if matches!(clock, "tc" | "tree") {
            "tree"
        } else {
            "vector"
        },
        trace.len(),
        report,
        elapsed.as_secs_f64()
    );
    for race in report.races.iter().take(limit) {
        let _ = writeln!(out, "  {race}");
    }
    if report.total as usize > limit {
        let _ = writeln!(out, "  ... and {} more", report.total as usize - limit);
    }
    Ok(())
}

fn cmd_timestamps(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(args, &["order"], &[])?;
    let [path] = flags.positional[..] else {
        return Err("timestamps requires exactly one FILE".into());
    };
    let order: PartialOrderKind = value(&kv, "order").unwrap_or("hb").parse()?;
    let trace = load(path)?;
    if trace.len() > 100_000 {
        return Err("refusing to print timestamps for traces over 100k events".into());
    }
    let ts = match order {
        PartialOrderKind::Hb => HbEngine::<TreeClock>::collect_timestamps(&trace),
        PartialOrderKind::Shb => ShbEngine::<TreeClock>::collect_timestamps(&trace),
        PartialOrderKind::Maz => MazEngine::<TreeClock>::collect_timestamps(&trace),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, (e, vt)) in trace.iter().zip(ts.iter()).enumerate() {
        writeln!(out, "{i:>6}  {e}  {vt}").map_err(|err| err.to_string())?;
    }
    Ok(())
}

fn cmd_conformance(args: &[String]) -> Result<(), String> {
    let (flags, kv) = Flags::parse(
        args,
        &["filter", "fault", "repro-dir"],
        &["full", "no-shrink"],
    )?;
    if let Some(extra) = flags.positional.first() {
        return Err(format!(
            "conformance takes no positional argument `{extra}`"
        ));
    }
    let full = value(&kv, "full").is_some();
    let shrink = value(&kv, "no-shrink").is_none();
    let fault: Fault = value(&kv, "fault").unwrap_or("none").parse()?;
    let corpus = if full {
        Corpus::full()
    } else {
        Corpus::quick()
    };
    let corpus = match value(&kv, "filter") {
        Some(needle) => {
            let c = corpus.filter(needle);
            if c.cases.is_empty() {
                return Err(format!("--filter {needle} matches no corpus case"));
            }
            c
        }
        None => corpus,
    };

    let start = std::time::Instant::now();
    let report = run_sweep(&corpus, SweepOptions { fault, shrink });
    let elapsed = start.elapsed();

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for outcome in &report.outcomes {
        let _ = writeln!(out, "{outcome}");
    }
    let _ = writeln!(out, "{report} in {:.2}s", elapsed.as_secs_f64());

    if let Some(dir) = value(&kv, "repro-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if let Err((_, Some(repro))) = &outcome.result {
                let path = Path::new(dir).join(format!("repro-{i}.trace"));
                std::fs::write(&path, &repro.text)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                let _ = writeln!(out, "wrote {}", path.display());
            }
        }
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} conformance failure(s)", report.failures()))
    }
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let (flags, _) = Flags::parse(args, &[], &[])?;
    let [input, output] = flags.positional[..] else {
        return Err("convert requires IN and OUT files".into());
    };
    let trace = load(input)?;
    store(&trace, output)?;
    println!("converted {input} -> {output} ({} events)", trace.len());
    Ok(())
}

const USAGE: &str = "\
tcr — trace tooling for tree-clock based concurrency analysis

USAGE:
  tcr gen --scenario NAME --threads K [--events N] [--seed S] -o FILE
  tcr gen --threads K [--events N] [--sync PCT] [--locks L] [--vars V] -o FILE
  tcr stats FILE
  tcr race [--order hb|shb|maz] [--clock tc|vc] [--limit N] FILE
  tcr timestamps [--order hb|shb|maz] FILE
  tcr convert IN OUT
  tcr conformance [--full] [--filter NEEDLE] [--fault F] [--no-shrink]
                  [--repro-dir DIR]

Scenarios: single-lock, skewed-locks, star, pairwise, fork-join-tree,
barrier-phases, pipeline, read-mostly, bursty-channels.
Files ending in .tctr use the binary format; others the text format.

conformance runs every corpus trace through the HB/SHB/MAZ engines with
both clock backends and cross-checks timestamps, race reports and work
metrics against the O(n^2) definitional oracles. Failures are shrunk to
minimal text-format repros (written to --repro-dir if given). --fault
injects a deliberate result perturbation (drop-race, skew-timestamp,
inflate-work, each optionally :hb/:shb/:maz) to demo the pipeline.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcr-test-{}-{label}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn no_args_shows_help() {
        assert_eq!(run(&[]), Err("help".to_owned()));
        assert_eq!(run(&args(&["--help"])), Err("help".to_owned()));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn gen_requires_output() {
        let e = run(&args(&["gen", "--threads", "4"])).unwrap_err();
        assert!(e.contains("-o"));
    }

    #[test]
    fn gen_stats_race_convert_round_trip() {
        let dir = temp_dir("roundtrip");
        let bin = dir.join("t.tctr");
        let txt = dir.join("t.trace");
        let bin_s = bin.to_str().unwrap();
        let txt_s = txt.to_str().unwrap();

        // Generate a star trace in binary format.
        run(&args(&[
            "gen",
            "--scenario",
            "star",
            "--threads",
            "8",
            "--events",
            "2000",
            "-o",
            bin_s,
        ]))
        .unwrap();
        assert!(bin.exists());

        // Inspect, analyze and convert it.
        run(&args(&["stats", bin_s])).unwrap();
        run(&args(&["race", "--order", "hb", "--clock", "tc", bin_s])).unwrap();
        run(&args(&["race", "--order", "maz", "--clock", "vc", bin_s])).unwrap();
        run(&args(&["convert", bin_s, txt_s])).unwrap();
        assert!(txt.exists());

        // The text round trip parses and matches in size.
        let t1 = load(bin_s).unwrap();
        let t2 = load(txt_s).unwrap();
        assert_eq!(t1.len(), t2.len());

        // Timestamps print for small traces.
        run(&args(&["timestamps", "--order", "shb", txt_s])).unwrap();

        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn gen_workload_respects_flags() {
        let dir = temp_dir("workload");
        let path = dir.join("w.trace");
        let p = path.to_str().unwrap();
        run(&args(&[
            "gen",
            "--threads",
            "6",
            "--events",
            "3000",
            "--sync",
            "30",
            "--locks",
            "2",
            "--vars",
            "9",
            "-o",
            p,
        ]))
        .unwrap();
        let t = load(p).unwrap();
        assert_eq!(t.thread_count(), 6);
        assert!(t.lock_count() <= 2);
        assert!(t.var_count() <= 9);
        let sync = t.stats().sync_pct();
        assert!(sync > 10.0 && sync < 60.0, "sync% {sync} out of band");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn invalid_trace_files_error_cleanly() {
        let dir = temp_dir("badfile");
        let path = dir.join("bad.trace");
        std::fs::write(&path, "t0 rel m\n").unwrap(); // release without acquire
        let e = run(&args(&["stats", path.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("invalid trace"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn conformance_quick_filter_passes() {
        // A filtered slice keeps the CLI test fast; the full quick sweep
        // runs in the tc-conformance crate's own tests.
        run(&args(&["conformance", "--filter", "star"])).unwrap();
    }

    #[test]
    fn conformance_detects_injected_fault_and_writes_repro() {
        let dir = temp_dir("conformance");
        let repro_dir = dir.join("repros");
        let e = run(&args(&[
            "conformance",
            "--filter",
            "workload-s0-v3",
            "--fault",
            "drop-race:hb",
            "--repro-dir",
            repro_dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(e.contains("failure"), "unexpected error: {e}");
        let repro = repro_dir.join("repro-0.trace");
        assert!(repro.exists(), "repro file missing");
        let text = std::fs::read_to_string(&repro).unwrap();
        assert!(text.contains("# conformance repro"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn conformance_rejects_bad_flags() {
        assert!(run(&args(&["conformance", "--fault", "explode"])).is_err());
        assert!(run(&args(&["conformance", "--filter", "no-such-case"])).is_err());
        assert!(run(&args(&["conformance", "positional"])).is_err());
        // Misspelled boolean flags must error, not silently run the
        // wrong sweep.
        let e = run(&args(&["conformance", "--ful"])).unwrap_err();
        assert!(e.contains("unknown flag"), "unexpected error: {e}");
        assert!(run(&args(&["gen", "--quick", "-o", "/tmp/x.trace"])).is_err());
    }

    #[test]
    fn gen_accepts_new_scenario_families() {
        let dir = temp_dir("families");
        for name in ["fork-join-tree", "pipeline"] {
            let path = dir.join(format!("{name}.trace"));
            run(&args(&[
                "gen",
                "--scenario",
                name,
                "--threads",
                "4",
                "--events",
                "300",
                "-o",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            let t = load(path.to_str().unwrap()).unwrap();
            assert_eq!(t.thread_count(), 4);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = run(&args(&["stats", "/definitely/not/here.trace"])).unwrap_err();
        assert!(e.contains("cannot open"));
    }

    #[test]
    fn bad_order_and_clock_are_rejected() {
        let dir = temp_dir("badflags");
        let path = dir.join("t.trace");
        std::fs::write(&path, "t0 w x\n").unwrap();
        let p = path.to_str().unwrap();
        assert!(run(&args(&["race", "--order", "cp", p])).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
