//! Three-node cluster integration suite.
//!
//! The deterministic half drives [`LocalCluster`] (no sockets, no
//! timing): byte-identical failover, in-flight tail replay, handoff,
//! and the stable-prefix GC bound. The socket half starts three real
//! [`ClusterServer`]s on localhost and exercises placement,
//! client-transparent forwarding FIFO, and heartbeat-detected
//! failover end to end.

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use tc_cluster::{ClusterConfig, ClusterServer, HashRing, LocalCluster};
use tc_stream::{parse_open, Client, Session};

/// The canonical racy workload: two unordered writers per variable,
/// plus some synchronized noise. Returns (lines, expected race count).
fn workload() -> (Vec<String>, usize) {
    let mut lines = Vec::new();
    for v in 0..4 {
        lines.push(format!("t0 w x{v}"));
        lines.push(format!("t1 w x{v}"));
        lines.push("t0 acq l".to_owned());
        lines.push("t0 rel l".to_owned());
        lines.push("t1 acq l".to_owned());
        lines.push(format!("t1 r x{v}"));
        lines.push("t1 rel l".to_owned());
    }
    (lines, 4)
}

/// Runs the same lines through a plain single-process session and
/// returns (races reply, checkpoint bytes) — the ground truth every
/// cluster path must match byte for byte.
fn reference(lines: &[String]) -> (String, Vec<u8>) {
    let (clock, config) = parse_open(&["hb", "tc"]).expect("valid open");
    let mut session = Session::new(1, clock, config);
    let mut sink = String::new();
    for line in lines {
        sink.clear();
        session.handle_line(line, &mut sink);
        assert!(!sink.contains("err"), "reference rejected {line}: {sink}");
    }
    let mut races = String::new();
    session.handle_line("races", &mut races);
    (races, session.checkpoint().to_bytes())
}

fn checkpoint_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("tc_cluster_it_{tag}_{}", std::process::id()));
    dir.to_string_lossy().into_owned()
}

// ---- deterministic (LocalCluster) -----------------------------------

#[test]
fn failover_is_byte_identical_including_subsequent_checkpoints() {
    let (lines, expected) = workload();
    let (want_races, want_cp) = reference(&lines);

    // delta_every=2 with periodic ticks: the replica follows closely.
    let mut c = LocalCluster::with_delta_every(3, 2);
    let id = c.open(0, 1, "hb tc");
    let owner = c.node_ref(0).place(id);
    let half = lines.len() / 2;
    for line in &lines[..half] {
        assert_eq!(c.client_line(0, 1, line), "", "feed {line}");
    }
    c.tick();

    // Kill the owner; the gateway must survive, so use a different one
    // when node 0 was the owner.
    let gateway = (0..3).find(|&n| n != owner).expect("two survive");
    c.kill(owner);
    let new_owner = c.node_ref(gateway).place(id);
    assert_ne!(new_owner, owner, "ownership moved");
    assert!(c.node_ref(new_owner).owns(id), "replica promoted");

    // The rest of the run flows through a survivor gateway.
    assert!(c
        .client_line(gateway, 7, &format!("use {id}"))
        .starts_with("ok session"));
    for line in &lines[half..] {
        assert_eq!(c.client_line(gateway, 7, line), "", "feed {line}");
    }
    let races = c.client_line(gateway, 7, "races");
    assert_eq!(races, want_races, "race report identical after failover");
    assert!(races.contains(&format!("ok {expected} {expected}")));

    // Subsequent checkpoints are byte-identical to the uninterrupted
    // run — the TCCP determinism contract survives resume + replay.
    let path = checkpoint_path("failover");
    let reply = c.client_line(gateway, 7, &format!("checkpoint {path}"));
    assert!(reply.starts_with("ok checkpoint"), "got {reply:?}");
    let got = std::fs::read(&path).expect("checkpoint file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(got, want_cp, "checkpoint bytes identical after failover");
}

#[test]
fn in_flight_tail_replays_when_no_recent_delta_exists() {
    let (lines, _) = workload();
    let (want_races, want_cp) = reference(&lines);

    // A huge delta cadence: the replica holds only the open snapshot
    // plus the raw payload tail, so promotion must replay everything.
    let mut c = LocalCluster::with_delta_every(3, 1_000_000);
    let id = c.open(0, 1, "hb tc");
    let owner = c.node_ref(0).place(id);
    for line in &lines {
        assert_eq!(c.client_line(0, 1, line), "");
    }
    let gateway = (0..3).find(|&n| n != owner).expect("two survive");
    c.kill(owner);
    assert!(c
        .client_line(gateway, 7, &format!("use {id}"))
        .starts_with("ok session"));
    let races = c.client_line(gateway, 7, "races");
    assert_eq!(races, want_races, "full-tail replay reproduces the report");

    let path = checkpoint_path("replay");
    c.client_line(gateway, 7, &format!("checkpoint {path}"));
    let got = std::fs::read(&path).expect("checkpoint file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(got, want_cp);
}

#[test]
fn handoff_moves_ownership_without_losing_state() {
    let (lines, _) = workload();
    let (want_races, _) = reference(&lines);
    let mut c = LocalCluster::with_delta_every(3, 4);
    let id = c.open(0, 1, "hb tc");
    let owner = c.node_ref(0).place(id);
    let half = lines.len() / 2;
    for line in &lines[..half] {
        assert_eq!(c.client_line(0, 1, line), "");
    }
    let reply = c.client_line(0, 1, &format!("handoff {id}"));
    assert!(reply.starts_with("ok handoff"), "got {reply:?}");
    let new_owner = c.node_ref(0).place(id);
    assert_ne!(new_owner, owner, "handoff changed the owner");
    assert!(c.node_ref(new_owner).owns(id));
    assert!(!c.node_ref(owner).owns(id));
    // Traffic keeps flowing through the same gateway, unmoved client.
    for line in &lines[half..] {
        assert_eq!(c.client_line(0, 1, line), "");
    }
    assert_eq!(c.client_line(0, 1, "races"), want_races);
}

#[test]
fn stability_bounds_delta_bytes_under_churn() {
    // The same workload twice: with gossip ticks (stability advances,
    // deltas diff against fresh bases) and without (the base never
    // promotes past the empty checkpoint, so every delta degenerates
    // toward a full snapshot). The metric ratio IS the stable-prefix
    // GC win.
    let churn: Vec<String> = (0..120)
        .map(|i| format!("t{} w v{}", i % 3, i % 7))
        .collect();

    let run = |ticked: bool| -> (u64, u64, u64) {
        let mut c = LocalCluster::with_delta_every(3, 4);
        let id = c.open(0, 1, "hb tc");
        let owner = c.node_ref(0).place(id);
        for (i, line) in churn.iter().enumerate() {
            assert_eq!(c.client_line(0, 1, line), "");
            if ticked && i % 4 == 3 {
                c.tick();
            }
        }
        let reg = c.node_ref(owner).registry();
        (
            reg.counter_value("tc_cluster_delta_bytes_total"),
            reg.counter_value("tc_cluster_checkpoint_bytes_total"),
            reg.counter_value("tc_cluster_deltas_total"),
        )
    };

    let (stable_delta, stable_cp, _) = run(true);
    let (stalled_delta, stalled_cp, stalled_n) = run(false);
    assert!(stable_delta > 0 && stalled_delta > 0);
    // Deltas never cost more than shipping checkpoints whole. The
    // stalled run degenerates every delta to one full-snapshot
    // literal, which carries ≤4 bytes of op framing (tag + length
    // varint) on top of the raw checkpoint — allow exactly that.
    assert!(stable_delta <= stable_cp, "{stable_delta} vs {stable_cp}");
    assert!(
        stalled_delta <= stalled_cp + 4 * stalled_n,
        "{stalled_delta} vs {stalled_cp} (+framing)"
    );
    // ...and advancing stability shrinks them by an integer factor.
    assert!(
        stable_delta * 2 <= stalled_delta,
        "stable {stable_delta} should be well under stalled {stalled_delta}"
    );
}

// ---- sockets (ClusterServer) ----------------------------------------

/// Reserves `n` distinct localhost ports by binding and dropping
/// listeners. Racy in principle, fine in a test process.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

fn start_ring(addrs: &[String], tick: Duration, miss: u32) -> Vec<ClusterServer> {
    (0..addrs.len())
        .map(|i| {
            ClusterServer::start_with(
                &addrs[i],
                addrs.to_vec(),
                ClusterConfig {
                    nodes: addrs.len(),
                    me: i as u32,
                    delta_every: 2,
                    auth: None,
                    telemetry: true,
                },
                tick,
                miss,
            )
            .expect("start node")
        })
        .collect()
}

fn sock(addr: &str) -> SocketAddr {
    addr.parse().expect("socket addr")
}

/// Reads a potentially multi-line reply (e.g. `races`: race lines
/// followed by an `ok`/`err` terminator), newline-joined like the
/// reference session's sink.
fn read_report(client: &mut Client) -> String {
    let mut out = String::new();
    loop {
        let line = client.read_reply().expect("reply line");
        out.push_str(&line);
        out.push('\n');
        if line.starts_with("ok") || line.starts_with("err") {
            return out;
        }
    }
}

#[test]
fn sockets_placement_matches_the_ring_and_any_gateway_serves() {
    let addrs = reserve_addrs(3);
    let servers = start_ring(&addrs, Duration::from_millis(25), 40);
    let ring = HashRing::new(3);

    let mut client = Client::open(sock(&addrs[0]), "hb tc").expect("open");
    let id = client.session();
    // The admin view agrees with an independently built ring.
    client.send(&format!("ring {id}")).unwrap();
    client.flush().unwrap();
    let reply = client.read_reply().unwrap();
    let owner: u32 = reply
        .split_whitespace()
        .nth(4)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad ring reply {reply:?}"));
    assert_eq!(owner, ring.owner(id), "server placement matches the ring");

    // Feed through gateway 0, read through gateway 2.
    for line in ["t0 w x", "t1 w x"] {
        client.send(line).unwrap();
    }
    client.send("stats").unwrap();
    client.flush().unwrap();
    let stats = client.read_reply().unwrap();
    assert!(stats.contains("events=2"), "got {stats:?}");

    let mut other = Client::open(sock(&addrs[2]), "hb tc").expect("open");
    other.send(&format!("use {id}")).unwrap();
    other.flush().unwrap();
    assert!(other.read_reply().unwrap().starts_with("ok session"));
    other.send("races").unwrap();
    other.flush().unwrap();
    let races = read_report(&mut other);
    assert!(races.contains("ok 1 1"), "got {races:?}");

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn sockets_forwarding_preserves_per_session_fifo() {
    let addrs = reserve_addrs(3);
    let servers = start_ring(&addrs, Duration::from_millis(25), 40);

    let mut client = Client::open(sock(&addrs[1]), "hb tc").expect("open");
    // Pipeline event/stats pairs without waiting: the monotone
    // events= counter in each reply proves the owner saw the stream
    // in order, forwarded or not.
    const N: u64 = 32;
    for i in 0..N {
        client.send(&format!("t{} w v{}", i % 3, i % 5)).unwrap();
        client.send("stats").unwrap();
    }
    client.flush().unwrap();
    for i in 1..=N {
        let reply = client.read_reply().unwrap();
        assert!(
            reply.contains(&format!("events={i} ")),
            "reply {i} out of order: {reply:?}"
        );
    }
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn sockets_peer_plane_requires_auth_when_configured() {
    use std::io::{Read, Write};
    use tc_trace::{wire, ClusterMsg};

    let addrs = reserve_addrs(3);
    let servers: Vec<ClusterServer> = (0..3)
        .map(|i| {
            ClusterServer::start_with(
                &addrs[i],
                addrs.clone(),
                ClusterConfig {
                    nodes: 3,
                    me: i as u32,
                    delta_every: 2,
                    auth: Some("sekret".into()),
                    telemetry: true,
                },
                Duration::from_millis(25),
                40,
            )
            .expect("start node")
        })
        .collect();

    // An unauthenticated connection speaking the peer protocol is cut
    // off before its message reaches the core — this forged
    // ForwardLine would otherwise execute the auth-gated handoff
    // admin command.
    let mut rogue = std::net::TcpStream::connect(sock(&addrs[0])).expect("connect");
    let forged = wire::encode_cluster(&ClusterMsg::ForwardLine {
        origin: 1,
        token: 1,
        session: 42,
        text: "handoff 42".into(),
    })
    .expect("encode");
    rogue.write_all(&forged).expect("write");
    let mut sink = Vec::new();
    let _ = rogue.read_to_end(&mut sink); // the server hangs up
    assert!(sink.is_empty(), "no reply to forged peer traffic: {sink:?}");

    // The ring itself still works: real peer links carry the token in
    // their Hello, so forwarding and admin commands keep flowing.
    let mut client = Client::open(sock(&addrs[1]), "hb tc").expect("open");
    let id = client.session();
    client.send("auth sekret").unwrap();
    client.send(&format!("ring {id}")).unwrap();
    for line in ["t0 w x", "t1 w x", "races"] {
        client.send(line).unwrap();
    }
    client.flush().unwrap();
    assert!(client.read_reply().unwrap().starts_with("ok authed"));
    assert!(client.read_reply().unwrap().starts_with("ok session"));
    let races = read_report(&mut client);
    assert!(races.contains("ok 1 1"), "got {races:?}");

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn sockets_heartbeat_failover_recovers_byte_identical_reports() {
    let (lines, _) = workload();
    let (want_races, want_cp) = reference(&lines);

    let addrs = reserve_addrs(3);
    let tick = Duration::from_millis(20);
    let mut servers: Vec<Option<ClusterServer>> =
        start_ring(&addrs, tick, 5).into_iter().map(Some).collect();
    let ring = HashRing::new(3);

    // Let the ring warm up (peer links + first heartbeats).
    std::thread::sleep(tick * 4);

    let probe = Client::open(sock(&addrs[0]), "hb tc").expect("open");
    let id = probe.session();
    let owner = ring.owner(id);
    let gateway = (0..3).find(|&n| n != owner).expect("two survive");
    drop(probe);

    let mut client = Client::open(sock(&addrs[gateway as usize]), "hb tc").expect("open gateway");
    client.send(&format!("use {id}")).unwrap();
    client.flush().unwrap();
    assert!(client.read_reply().unwrap().starts_with("ok session"));

    let half = lines.len() / 2;
    for line in &lines[..half] {
        client.send(line).unwrap();
    }
    // Synchronize so every pre-kill payload reached the owner AND its
    // replica before the murder.
    client.send("stats").unwrap();
    client.flush().unwrap();
    assert!(client
        .read_reply()
        .unwrap()
        .contains(&format!("events={half} ")));
    std::thread::sleep(tick * 4);

    servers[owner as usize].take().expect("owner alive").abort();

    // Wait until the survivors declare the owner dead and promote.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.send(&format!("ring {id}")).unwrap();
        client.flush().unwrap();
        let reply = client.read_reply().unwrap();
        let now: Option<u32> = reply.split_whitespace().nth(4).and_then(|v| v.parse().ok());
        if now.is_some() && now != Some(owner) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "failover did not happen; last ring reply {reply:?}"
        );
        std::thread::sleep(tick);
    }

    for line in &lines[half..] {
        client.send(line).unwrap();
    }
    client.send("races").unwrap();
    client.flush().unwrap();
    let races = read_report(&mut client);
    assert_eq!(
        races, want_races,
        "race report identical after socket failover"
    );

    let path = checkpoint_path("socket_failover");
    client.send(&format!("checkpoint {path}")).unwrap();
    client.flush().unwrap();
    assert!(client.read_reply().unwrap().starts_with("ok checkpoint"));
    let got = std::fs::read(&path).expect("checkpoint file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        got, want_cp,
        "checkpoint bytes identical after socket failover"
    );

    for s in servers.into_iter().flatten() {
        s.shutdown();
    }
}
