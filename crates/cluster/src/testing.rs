//! [`LocalCluster`] — a whole ring in one thread.
//!
//! Because [`NodeCore`] is a pure state machine, N
//! of them plus a message pump *is* a cluster: client calls go to a
//! chosen gateway node, then [`LocalCluster::pump`] moves peer
//! messages between cores until no node has anything left to say.
//! Per-link FIFO order — the only delivery property the protocol
//! assumes — falls out of draining each core's output queue in
//! order.
//!
//! This is what the conformance suite's `cluster` check and the
//! failover/GC integration tests drive: fully deterministic, no
//! sockets, no sleeps, and a [`LocalCluster::kill`] that models a
//! crash (the dead core's state is dropped wholesale, survivors get
//! `fail_node`) without any heartbeat timing.

use tc_trace::Event;

use crate::node::{ConnId, NodeCore, Output};
use crate::ClusterConfig;

/// An in-process N-node cluster.
#[derive(Debug)]
pub struct LocalCluster {
    /// `None` marks a killed node.
    nodes: Vec<Option<NodeCore>>,
    /// Replies collected per (node, conn) since the last take.
    replies: Vec<(u32, ConnId, String)>,
    /// Whether any node requested shutdown.
    shutdown: bool,
}

impl LocalCluster {
    /// A ring of `n` nodes sharing `config` (each node gets its own
    /// index; `config.me` and `config.nodes` are overwritten).
    pub fn new(n: usize, config: &ClusterConfig) -> LocalCluster {
        let nodes = (0..n)
            .map(|i| {
                Some(NodeCore::new(ClusterConfig {
                    nodes: n,
                    me: i as u32,
                    ..config.clone()
                }))
            })
            .collect();
        LocalCluster {
            nodes,
            replies: Vec::new(),
            shutdown: false,
        }
    }

    /// A ring of `n` nodes with default config and the given delta
    /// cadence — the common test shape.
    pub fn with_delta_every(n: usize, delta_every: u64) -> LocalCluster {
        LocalCluster::new(
            n,
            &ClusterConfig {
                delta_every,
                ..ClusterConfig::default()
            },
        )
    }

    /// Mutable access to a live node's core (panics for dead nodes —
    /// tests should not poke corpses).
    pub fn node(&mut self, node: u32) -> &mut NodeCore {
        self.nodes[node as usize].as_mut().expect("node was killed")
    }

    /// Shared access to a live node's core.
    pub fn node_ref(&self, node: u32) -> &NodeCore {
        self.nodes[node as usize].as_ref().expect("node was killed")
    }

    /// `true` once any node has been asked to shut down.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Sends a client line to `node` for connection `conn` and pumps
    /// to quiescence, returning everything written back to that
    /// connection (across however many nodes the request touched).
    pub fn client_line(&mut self, node: u32, conn: ConnId, line: &str) -> String {
        self.node(node).client_line(conn, line);
        self.pump();
        self.take_replies(node, conn)
    }

    /// Sends a client frame to `node` and pumps, returning the reply
    /// text (usually empty — frames are silent on success).
    pub fn client_frame(
        &mut self,
        node: u32,
        conn: ConnId,
        session: u64,
        events: &[Event],
    ) -> String {
        self.node(node).client_frame(conn, session, events);
        self.pump();
        self.take_replies(node, conn)
    }

    /// Runs one heartbeat/gossip tick on every live node and pumps.
    /// Stability (and therefore delta-base promotion) advances only
    /// across ticks, mirroring the socket server's timer.
    pub fn tick(&mut self) {
        for i in 0..self.nodes.len() {
            if let Some(core) = self.nodes[i].as_mut() {
                core.tick();
            }
        }
        self.pump();
    }

    /// Crashes `node`: its state vanishes un-flushed (anything it
    /// queued but had not delivered is lost, like a real crash) and
    /// every survivor observes the death.
    pub fn kill(&mut self, node: u32) {
        self.nodes[node as usize] = None;
        for i in 0..self.nodes.len() {
            if let Some(core) = self.nodes[i].as_mut() {
                core.fail_node(node);
            }
        }
        self.pump();
    }

    /// Delivers queued peer messages until every live node is silent.
    /// Messages to dead nodes are dropped — the crash model.
    pub fn pump(&mut self) {
        loop {
            let mut moved = false;
            for i in 0..self.nodes.len() {
                let outputs = match self.nodes[i].as_mut() {
                    Some(core) => core.drain(),
                    None => continue,
                };
                for out in outputs {
                    moved = true;
                    match out {
                        Output::Client(conn, text) => {
                            self.replies.push((i as u32, conn, text));
                        }
                        Output::Peer(peer, msg) => {
                            if let Some(target) = self.nodes[peer as usize].as_mut() {
                                target.peer_msg(msg);
                            }
                        }
                        Output::Shutdown => self.shutdown = true,
                    }
                }
            }
            if !moved {
                return;
            }
        }
    }

    /// Collects (and removes) the reply text accumulated for one
    /// client connection at one gateway, in arrival order.
    pub fn take_replies(&mut self, node: u32, conn: ConnId) -> String {
        let mut out = String::new();
        self.replies.retain(|(n, c, text)| {
            if *n == node && *c == conn {
                out.push_str(text);
                false
            } else {
                true
            }
        });
        out
    }

    /// Opens a session through gateway `node` and returns its id.
    /// Panics on an error reply — tests open sessions that must work.
    pub fn open(&mut self, node: u32, conn: ConnId, args: &str) -> u64 {
        let reply = self.client_line(node, conn, &format!("open {args}"));
        assert!(
            reply.starts_with("ok session"),
            "open {args} via node {node} failed: {reply:?}"
        );
        reply
            .split_whitespace()
            .nth(2)
            .and_then(|v| v.parse().ok())
            .expect("open reply carries the id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_forwarded_session_answers_like_a_local_one() {
        let mut c = LocalCluster::with_delta_every(3, 2);
        let id = c.open(0, 1, "hb tc");
        // Drive a textbook racy pair through whatever node owns it.
        assert_eq!(c.client_line(0, 1, "t0 w x"), "");
        assert_eq!(c.client_line(0, 1, "t1 w x"), "");
        let races = c.client_line(0, 1, "races");
        assert!(races.contains("ok 1 1"), "got {races:?}");
        // The same session is reachable through another gateway.
        assert!(c
            .client_line(2, 9, &format!("use {id}"))
            .starts_with("ok session"));
        let races = c.client_line(2, 9, "races");
        assert!(races.contains("ok 1 1"), "got {races:?}");
    }

    #[test]
    fn every_session_has_an_owner_and_a_distinct_replica() {
        let mut c = LocalCluster::with_delta_every(3, 4);
        for conn in 0..6 {
            let id = c.open(conn % 3, conn.into(), "hb tc");
            c.client_line(conn % 3, conn.into(), "t0 fork t1");
            let owner = c.node_ref(0).place(id);
            let replica = c.node_ref(0).replica_for(id, owner).expect("3 nodes");
            assert_ne!(owner, replica);
            assert!(c.node_ref(owner).owns(id), "owner really runs {id}");
            assert!(
                c.node_ref(replica).holds_replica(id),
                "replica holds {id} after the open snapshot"
            );
        }
    }

    #[test]
    fn killing_the_owner_moves_the_session_to_its_replica() {
        let mut c = LocalCluster::with_delta_every(3, 2);
        let id = c.open(0, 1, "hb tc");
        c.client_line(0, 1, "t0 w x");
        c.client_line(0, 1, "t1 w x");
        let owner = c.node_ref(0).place(id);
        let replica = c.node_ref(0).replica_for(id, owner).expect("3 nodes");
        // Keep a live gateway: pick a node that is neither the owner
        // nor... the gateway may be the owner; use a survivor.
        let survivor = (0..3).find(|&n| n != owner).expect("two survive");
        c.kill(owner);
        assert_eq!(c.node_ref(survivor).place(id), replica);
        assert!(c.node_ref(replica).owns(id), "replica promoted itself");
        let reply = c.client_line(survivor, 42, &format!("use {id}"));
        assert!(reply.starts_with("ok session"), "got {reply:?}");
        let races = c.client_line(survivor, 42, "races");
        assert!(
            races.contains("ok 1 1"),
            "report survives failover: {races:?}"
        );
    }
}
