//! The consistent-hash **ring** sessions are placed on.
//!
//! Every node hashes a fixed number of virtual points onto a `u64`
//! circle; a session id is owned by the first virtual point clockwise
//! from its hash. Replicas go to the *key successor* — the first
//! **distinct** node continuing clockwise — so that when the owner
//! dies and its points vanish from the ring, every one of its keys
//! lands exactly on the node that already holds the replica. That
//! Dynamo-style preference-list discipline is what makes failover a
//! local resume instead of a cluster-wide reshuffle.
//!
//! The ring is deterministic: every node builds the same circle from
//! the same peer set, so routing decisions agree without coordination.

/// Virtual points each node contributes to the circle. Enough to keep
/// placement balanced across a handful of nodes without making the
/// sorted-point scan noticeable.
const VNODES: u32 = 64;

/// A deterministic 64-bit mixer (splitmix64) — the ring's hash. Not
/// cryptographic; placement only needs uniformity and agreement.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain separator for key hashes. Vnode points hash
/// `node << 32 | v`, which collides with plain `mix(key)` for every
/// key below [`VNODES`] — and session ids ARE small integers, so
/// without separation they all hash exactly onto node 0's points and
/// the ring stops balancing.
const KEY_DOMAIN: u64 = 0x7463_5f6b_6579_5f68;

/// Where `key` sits on the circle.
fn key_point(key: u64) -> u64 {
    mix(key ^ KEY_DOMAIN)
}

/// The consistent-hash ring over the **live** node set.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Total nodes in the static peer set (dead ones included — node
    /// indices never shift).
    nodes: usize,
    /// Liveness per node index.
    live: Vec<bool>,
    /// The circle: `(point, node)` sorted by point, live nodes only.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// A ring over `nodes` peers, all initially live.
    pub fn new(nodes: usize) -> HashRing {
        assert!(nodes >= 1, "a cluster needs at least one node");
        let mut ring = HashRing {
            nodes,
            live: vec![true; nodes],
            points: Vec::new(),
        };
        ring.rebuild();
        ring
    }

    /// Rebuilds the circle from the live set.
    fn rebuild(&mut self) {
        self.points.clear();
        for node in 0..self.nodes as u32 {
            if !self.live[node as usize] {
                continue;
            }
            for v in 0..VNODES {
                self.points
                    .push((mix(u64::from(node) << 32 | u64::from(v)), node));
            }
        }
        self.points.sort_unstable();
    }

    /// Marks `node` dead and removes its points. Idempotent.
    pub fn remove(&mut self, node: u32) {
        if self.live.get(node as usize).copied().unwrap_or(false) {
            self.live[node as usize] = false;
            self.rebuild();
        }
    }

    /// `true` while `node` is part of the live set.
    pub fn is_live(&self, node: u32) -> bool {
        self.live.get(node as usize).copied().unwrap_or(false)
    }

    /// The live node indices, ascending.
    pub fn live_nodes(&self) -> Vec<u32> {
        (0..self.nodes as u32)
            .filter(|&n| self.is_live(n))
            .collect()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The node owning `key`: the first virtual point clockwise from
    /// `mix(key)`.
    pub fn owner(&self, key: u64) -> u32 {
        self.walk(key)
            .next()
            .expect("a non-empty ring always has an owner")
    }

    /// The replica target for `key` given its current `owner`: the
    /// first live node clockwise that is not the owner. `None` when
    /// the owner is the only live node.
    pub fn successor(&self, key: u64, owner: u32) -> Option<u32> {
        self.walk(key).find(|&n| n != owner)
    }

    /// Distinct live nodes in clockwise preference order from `key`'s
    /// position (an infinite cycle truncated at the live count).
    fn walk(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let h = key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut seen: Vec<u32> = Vec::new();
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(self.points.len())
            .filter_map(move |&(_, node)| {
                if seen.contains(&node) {
                    None
                } else {
                    seen.push(node);
                    Some(node)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_balanced() {
        let ring = HashRing::new(3);
        let again = HashRing::new(3);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            let owner = ring.owner(key);
            assert_eq!(owner, again.owner(key), "rings must agree");
            counts[owner as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                c > 3000 / 6,
                "node {node} owns {c} of 3000 keys — too unbalanced"
            );
        }
    }

    #[test]
    fn successor_is_distinct_and_becomes_owner_on_death() {
        let mut ring = HashRing::new(3);
        // Capture (owner, successor) for a spread of keys, then kill
        // each key's owner: the new owner must be the old successor —
        // the node holding the replica.
        let picks: Vec<(u64, u32, u32)> = (0..200u64)
            .map(|k| {
                let o = ring.owner(k);
                let s = ring.successor(k, o).expect("3 live nodes");
                assert_ne!(o, s);
                (k, o, s)
            })
            .collect();
        ring.remove(1);
        for (k, o, s) in picks {
            if o == 1 {
                assert_eq!(ring.owner(k), s, "key {k} must fail over to its replica");
            } else {
                assert_eq!(
                    ring.owner(k),
                    o,
                    "key {k} must not move when another node dies"
                );
            }
        }
        assert_eq!(ring.live_nodes(), vec![0, 2]);
        assert_eq!(ring.live_count(), 2);
        assert!(!ring.is_live(1));
        // Removing twice is idempotent.
        ring.remove(1);
        assert_eq!(ring.live_count(), 2);
    }

    #[test]
    fn small_sequential_ids_balance_across_two_nodes() {
        // Regression: key hashing shared the vnode points' input
        // domain, so every id < VNODES hashed exactly onto one of
        // node 0's points — and real session ids are small integers.
        let ring = HashRing::new(2);
        let ones = (0..64u64).filter(|&k| ring.owner(k) == 1).count();
        assert!(ones > 8 && ones < 56, "{ones}/64 keys on node 1");
    }

    #[test]
    fn single_node_ring_owns_everything_with_no_successor() {
        let mut ring = HashRing::new(2);
        ring.remove(0);
        for k in 0..50u64 {
            assert_eq!(ring.owner(k), 1);
            assert_eq!(ring.successor(k, 1), None);
        }
    }
}
