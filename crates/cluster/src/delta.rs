//! Byte-level **checkpoint deltas** for the replication stream.
//!
//! TCCP checkpoints are deterministic byte strings, and successive
//! checkpoints of the same session share most of their content — but
//! not in place: a varint counter growing by one byte early in the
//! buffer shifts everything behind it, so a naive common-prefix/
//! common-suffix diff degenerates to shipping nearly the whole
//! snapshot. The encoder here is rsync-lite: the base is indexed by a
//! rolling weak hash of fixed-size blocks, the target is scanned at
//! every offset, and verified matches become *copy* ops (extended
//! forward as far as the bytes agree) while unmatched bytes become
//! *literal* runs. Shifted-but-unchanged interior regions — the
//! common case — collapse to a few bytes of copy op each.
//!
//! The scheme stays checkpoint-agnostic on purpose: correctness never
//! depends on TCCP internals, only on [`ByteDelta::apply`] inverting
//! [`ByteDelta::diff`], which the property tests pin down. A delta
//! against the empty base (`base_seq = 0` on the wire) degenerates to
//! one literal run — a full snapshot.

use std::collections::HashMap;

/// Block size for the base index. Checkpoints run from hundreds of
/// bytes to a few MB; 32 keeps small checkpoints diffable while copy
/// ops (≈ 2–6 bytes) stay far cheaper than the blocks they replace.
const BLOCK: usize = 32;

/// One reconstruction instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// Copy `len` bytes from `off` in the base.
    Copy { off: u64, len: u64 },
    /// Emit these bytes verbatim.
    Literal(Vec<u8>),
}

/// A diff turning one byte string into another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteDelta {
    ops: Vec<Op>,
}

/// Rolling additive hash (adler-style) of a [`BLOCK`]-byte window.
#[derive(Clone, Copy)]
struct Weak {
    a: u32,
    b: u32,
}

impl Weak {
    fn of(block: &[u8]) -> Weak {
        let mut w = Weak { a: 0, b: 0 };
        for &byte in block {
            w.a = w.a.wrapping_add(u32::from(byte));
            w.b = w.b.wrapping_add(w.a);
        }
        w
    }

    /// Slides the window one byte: drop `out`, absorb `inc`.
    fn roll(&mut self, out: u8, inc: u8) {
        self.a = self
            .a
            .wrapping_add(u32::from(inc))
            .wrapping_sub(u32::from(out));
        self.b = self
            .b
            .wrapping_add(self.a)
            .wrapping_sub((BLOCK as u32).wrapping_mul(u32::from(out)));
    }

    fn value(self) -> u32 {
        self.a ^ self.b.rotate_left(16)
    }
}

impl ByteDelta {
    /// Diffs `new` against `base`.
    pub fn diff(base: &[u8], new: &[u8]) -> ByteDelta {
        let mut ops = Vec::new();
        if new.is_empty() {
            return ByteDelta { ops };
        }
        if base.len() < BLOCK || new.len() < BLOCK {
            return ByteDelta {
                ops: vec![Op::Literal(new.to_vec())],
            };
        }
        // Index every aligned base block by its weak hash.
        let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
        for off in (0..=base.len() - BLOCK).step_by(BLOCK) {
            index
                .entry(Weak::of(&base[off..off + BLOCK]).value())
                .or_default()
                .push(off);
        }
        let mut literal: Vec<u8> = Vec::new();
        let mut pos = 0usize;
        let mut weak = Weak::of(&new[..BLOCK]);
        while pos + BLOCK <= new.len() {
            let window = &new[pos..pos + BLOCK];
            let matched = index
                .get(&weak.value())
                .into_iter()
                .flatten()
                .copied()
                .find(|&off| &base[off..off + BLOCK] == window);
            if let Some(off) = matched {
                // Extend the verified match as far as the bytes agree.
                let mut len = BLOCK;
                while off + len < base.len()
                    && pos + len < new.len()
                    && base[off + len] == new[pos + len]
                {
                    len += 1;
                }
                if !literal.is_empty() {
                    ops.push(Op::Literal(std::mem::take(&mut literal)));
                }
                ops.push(Op::Copy {
                    off: off as u64,
                    len: len as u64,
                });
                pos += len;
                if pos + BLOCK <= new.len() {
                    weak = Weak::of(&new[pos..pos + BLOCK]);
                }
            } else {
                literal.push(new[pos]);
                if pos + BLOCK < new.len() {
                    // Slide the window: drop new[pos], absorb the
                    // byte entering at new[pos + BLOCK].
                    weak.roll(new[pos], new[pos + BLOCK]);
                }
                pos += 1;
            }
        }
        literal.extend_from_slice(&new[pos..]);
        if !literal.is_empty() {
            ops.push(Op::Literal(literal));
        }
        ByteDelta { ops }
    }

    /// Reconstructs the target from `base`. Returns `None` when a
    /// copy op falls outside the base (wrong base generation).
    pub fn apply(&self, base: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                Op::Copy { off, len } => {
                    let off = usize::try_from(*off).ok()?;
                    let len = usize::try_from(*len).ok()?;
                    let end = off.checked_add(len)?;
                    if end > base.len() {
                        return None;
                    }
                    out.extend_from_slice(&base[off..end]);
                }
                Op::Literal(bytes) => out.extend_from_slice(bytes),
            }
        }
        Some(out)
    }

    /// Serializes the ops for the wire: per op a varint tag (0 =
    /// literal, 1 = copy), then `len + bytes` or `off + len`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                Op::Literal(bytes) => {
                    put_varint(&mut out, 0);
                    put_varint(&mut out, bytes.len() as u64);
                    out.extend_from_slice(bytes);
                }
                Op::Copy { off, len } => {
                    put_varint(&mut out, 1);
                    put_varint(&mut out, *off);
                    put_varint(&mut out, *len);
                }
            }
        }
        out
    }

    /// Parses a serialized delta. Returns `None` on malformed input.
    pub fn from_bytes(mut bytes: &[u8]) -> Option<ByteDelta> {
        let mut ops = Vec::new();
        while !bytes.is_empty() {
            match take_varint(&mut bytes)? {
                0 => {
                    let len = usize::try_from(take_varint(&mut bytes)?).ok()?;
                    if len > bytes.len() {
                        return None;
                    }
                    let (lit, rest) = bytes.split_at(len);
                    ops.push(Op::Literal(lit.to_vec()));
                    bytes = rest;
                }
                1 => {
                    let off = take_varint(&mut bytes)?;
                    let len = take_varint(&mut bytes)?;
                    ops.push(Op::Copy { off, len });
                }
                _ => return None,
            }
        }
        Some(ByteDelta { ops })
    }

    /// Serialized size — the delta's wire cost.
    pub fn len(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Literal(bytes) => 1 + varint_len(bytes.len() as u64) + bytes.len(),
                Op::Copy { off, len } => 1 + varint_len(*off) + varint_len(*len),
            })
            .sum()
    }

    /// `true` when base and target were byte-identical empties.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn take_varint(bytes: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = bytes.split_first()?;
        *bytes = rest;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn varint_len(v: u64) -> usize {
    (1 + (64 - v.max(1).leading_zeros() as usize).saturating_sub(1) / 7).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn round_trip(base: &[u8], new: &[u8]) -> ByteDelta {
        let d = ByteDelta::diff(base, new);
        assert_eq!(
            d.apply(base).as_deref(),
            Some(new),
            "apply must invert diff"
        );
        let wire = ByteDelta::from_bytes(&d.to_bytes()).expect("parses back");
        assert_eq!(wire, d, "wire round trip");
        assert_eq!(d.to_bytes().len(), d.len(), "len() matches serialization");
        d
    }

    #[test]
    fn diff_against_empty_base_is_a_full_snapshot() {
        let d = round_trip(b"", b"hello checkpoint");
        assert!(d.len() >= 16, "one literal run carrying everything");
    }

    #[test]
    fn a_shifted_interior_still_collapses_to_copies() {
        // The failure mode that killed prefix/suffix diffing: one
        // byte inserted near the front shifts everything behind it.
        let mut base = vec![0u8; 0];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2048 {
            base.push(rng.random_range(0..=u8::MAX));
        }
        let mut new = base.clone();
        new.insert(10, 0x55);
        let d = round_trip(&base, &new);
        assert!(
            d.len() < 200,
            "2 KiB shifted by one byte must diff small, got {}",
            d.len()
        );
    }

    #[test]
    fn scattered_in_place_edits_ship_small() {
        let mut rng = StdRng::seed_from_u64(11);
        let base: Vec<u8> = (0..4096).map(|_| rng.random_range(0..=u8::MAX)).collect();
        let mut new = base.clone();
        for i in [100usize, 1500, 3000] {
            new[i] ^= 0xff;
        }
        let d = round_trip(&base, &new);
        assert!(d.len() < 400, "three flipped bytes, got {}", d.len());
    }

    #[test]
    fn identical_inputs_diff_to_pure_copies() {
        let base: Vec<u8> = (0..255).collect();
        let d = round_trip(&base, &base.clone());
        assert!(d.len() < 16, "pure copy, got {}", d.len());
    }

    #[test]
    fn degenerate_shapes_stay_correct() {
        round_trip(b"aaaaaa", b"aaa");
        round_trip(b"aaa", b"aaaaaa");
        round_trip(b"abcdef", b"xyz");
        round_trip(b"", b"");
        round_trip(b"abc", b"");
        // Repetitive content — many identical weak hashes.
        round_trip(&[7u8; 500], &[7u8; 501]);
        let mixed: Vec<u8> = (0..500u32).map(|i| (i % 3) as u8).collect();
        round_trip(&[7u8; 500], &mixed);
    }

    #[test]
    fn random_pairs_always_invert() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let blen = rng.random_range(0..600);
            let nlen = rng.random_range(0..600);
            let base: Vec<u8> = (0..blen).map(|_| rng.random_range(0u8..4)).collect();
            // Derive new from base with mutations so there is real
            // shared content to find.
            let mut new: Vec<u8> = base.iter().copied().cycle().take(nlen).collect();
            for _ in 0..rng.random_range(0..20) {
                if new.is_empty() {
                    break;
                }
                let i = rng.random_range(0..new.len());
                new[i] = rng.random_range(0..=u8::MAX);
            }
            round_trip(&base, &new);
        }
    }

    #[test]
    fn apply_rejects_a_mismatched_base() {
        let d = ByteDelta {
            ops: vec![Op::Copy { off: 10, len: 10 }],
        };
        assert_eq!(d.apply(b"short"), None);
    }

    #[test]
    fn malformed_bytes_parse_to_none() {
        assert!(ByteDelta::from_bytes(&[2]).is_none(), "unknown tag");
        assert!(
            ByteDelta::from_bytes(&[0, 5, 1, 2]).is_none(),
            "short literal"
        );
        assert!(ByteDelta::from_bytes(&[1, 3]).is_none(), "truncated copy");
    }
}
