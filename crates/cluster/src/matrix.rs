//! The per-node **matrix clock** behind cluster-wide stability.
//!
//! Row `i` of the matrix is what node *i* claims to have durably
//! applied: `M[i][j]` = the highest **contiguous** replication
//! sequence number originated by node *j* that node *i* has applied.
//! Each node maintains its own row locally as replication frames
//! arrive and broadcasts it in [`ClusterMsg::StableVector`] gossip;
//! rows received from peers are merged entry-wise (monotone max).
//!
//! The **stable prefix** of an origin *j* is the column minimum over
//! the rows of *live* nodes: every live node has applied at least that
//! much of *j*'s replication stream, so *j* may truncate its delta
//! history up to that point and promote the covered checkpoint to the
//! new diff base — nothing below the stable prefix can ever be asked
//! for again. Dead nodes are excluded from the minimum (a corpse
//! would pin stability at its last gossip forever); the liveness
//! decision is the ring's, not the matrix's.
//!
//! [`ClusterMsg::StableVector`]: tc_trace::ClusterMsg::StableVector

/// A square matrix of replication watermarks, one row per node.
#[derive(Debug, Clone)]
pub struct MatrixClock {
    /// This node's index — the row updated by [`MatrixClock::record`].
    me: u32,
    /// `rows[i][j]` = highest contiguous repl seq from origin `j`
    /// that node `i` has acknowledged applying.
    rows: Vec<Vec<u64>>,
    /// Nodes declared dead; their rows no longer gate stability.
    dead: Vec<bool>,
}

impl MatrixClock {
    /// An all-zero matrix for a cluster of `nodes` peers, maintained
    /// from the perspective of node `me`.
    pub fn new(nodes: usize, me: u32) -> MatrixClock {
        assert!((me as usize) < nodes, "own index must be in range");
        MatrixClock {
            me,
            rows: vec![vec![0; nodes]; nodes],
            dead: vec![false; nodes],
        }
    }

    /// Records that this node applied replication frame `seq` from
    /// `origin`. Sequences are per-origin and contiguous (the peer
    /// links are FIFO), so the watermark simply advances; a stale or
    /// duplicate delivery is ignored.
    pub fn record(&mut self, origin: u32, seq: u64) {
        let cell = &mut self.rows[self.me as usize][origin as usize];
        if seq > *cell {
            *cell = seq;
        }
    }

    /// This node's own row — the payload of its stability gossip.
    pub fn own_row(&self) -> &[u64] {
        &self.rows[self.me as usize]
    }

    /// Merges a gossiped row from `node` (entry-wise max; watermarks
    /// only move forward, so reordered gossip is harmless).
    pub fn merge_row(&mut self, node: u32, row: &[u64]) {
        let mine = &mut self.rows[node as usize];
        for (cell, &seen) in mine.iter_mut().zip(row) {
            if seen > *cell {
                *cell = seen;
            }
        }
    }

    /// Excludes `node` from future stability minima.
    pub fn mark_dead(&mut self, node: u32) {
        self.dead[node as usize] = true;
    }

    /// What node `by` has acknowledged applying of `origin`'s
    /// replication stream (its merged row entry). Owners gate delta-
    /// base promotion on their replica's entry.
    pub fn applied(&self, by: u32, origin: u32) -> u64 {
        self.rows[by as usize][origin as usize]
    }

    /// The cluster-wide stable prefix of `origin`'s replication
    /// stream: the minimum watermark across live rows. Everything at
    /// or below this sequence is applied everywhere that still counts.
    pub fn stable(&self, origin: u32) -> u64 {
        self.rows
            .iter()
            .zip(&self.dead)
            .filter(|&(_, &dead)| !dead)
            .map(|(row, _)| row[origin as usize])
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_is_the_live_column_minimum() {
        let mut m = MatrixClock::new(3, 0);
        m.record(1, 5); // we applied seq 5 from origin 1
        assert_eq!(m.own_row(), &[0, 5, 0]);
        // Origin 1's stream is not stable yet: rows 1 and 2 are silent.
        assert_eq!(m.stable(1), 0);
        // Origin 1's own gossip covers its own stream trivially.
        m.merge_row(1, &[0, 9, 0]);
        assert_eq!(m.stable(1), 0, "node 2 still reported nothing");
        m.merge_row(2, &[0, 3, 0]);
        assert_eq!(m.stable(1), 3, "slowest live node gates stability");
        m.merge_row(2, &[0, 7, 0]);
        assert_eq!(m.stable(1), 5, "now we are the slowest");
    }

    #[test]
    fn dead_nodes_stop_pinning_stability() {
        let mut m = MatrixClock::new(3, 0);
        m.record(1, 10);
        m.merge_row(1, &[0, 10, 0]);
        // Node 2 is silent, pinning origin 1's stability at zero...
        assert_eq!(m.stable(1), 0);
        // ...until the ring declares it dead.
        m.mark_dead(2);
        assert_eq!(m.stable(1), 10);
    }

    #[test]
    fn merges_and_records_are_monotone() {
        let mut m = MatrixClock::new(2, 1);
        m.record(0, 4);
        m.record(0, 2); // stale duplicate
        assert_eq!(m.own_row(), &[4, 0]);
        m.merge_row(0, &[0, 6]);
        m.merge_row(0, &[0, 5]); // reordered gossip
        assert_eq!(m.stable(1), 0); // our own row hasn't seen origin 1
        m.record(1, 6);
        assert_eq!(m.stable(1), 6);
    }
}
