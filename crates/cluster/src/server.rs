//! [`ClusterServer`] — sockets, threads and timers around a
//! [`NodeCore`].
//!
//! One TCP port per node serves **both** planes: the first byte of
//! each message picks the protocol — text lines and `0xF7`/`0xF6`
//! binary frames are client traffic, `0xF8` messages are peer
//! traffic (an inbound peer link always opens with
//! [`ClusterMsg::Hello`]). When the node runs with a shared-secret
//! auth token, that Hello must carry it: `0xF8` messages on a
//! connection that has not presented a valid Hello are rejected and
//! the connection dropped, so an unauthenticated client on the
//! shared port cannot reach the peer plane (forwards, replication,
//! session assignment). Outbound peer links are lazy, persistent
//! and FIFO: a dedicated writer thread per peer drains an in-order
//! channel, which — together with the core being fed under one lock —
//! preserves the per-link ordering the replication protocol assumes.
//!
//! A ticker thread drives heartbeats, matrix-row gossip and failure
//! detection: a peer not heard from for `miss_limit` ticks is
//! declared dead and [`NodeCore::fail_node`] runs. Detection is
//! unilateral and eviction permanent — the failure model is
//! crash-stop. A node mis-declared dead (a long stall, a partition)
//! learns of its eviction from the `Evicted` notices peers send back
//! at its next heartbeat and fences itself by shutting down, bounding
//! the split-brain window. [`ClusterServer::abort`] kills a node
//! abruptly (no goodbyes, queued messages dropped) so integration
//! tests can exercise exactly that path.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tc_stream::constant_time_eq;
use tc_trace::wire::{self, CLUSTER_MAGIC, FRAME_MAGIC, MULTI_MAGIC};
use tc_trace::ClusterMsg;

use crate::node::{ConnId, NodeCore, Output};
use crate::ClusterConfig;

/// Default heartbeat/gossip cadence.
pub const DEFAULT_TICK: Duration = Duration::from_millis(50);
/// Default missed-tick budget before a peer is declared dead.
///
/// Eviction is permanent (crash-stop model), so the budget errs
/// large — 20 ticks is a full second at the default cadence — to keep
/// an ordinary GC or scheduler stall from being mistaken for a
/// crash. A node that is mis-declared anyway self-fences on the
/// first eviction notice peers send back.
pub const DEFAULT_MISS_LIMIT: u32 = 20;
/// How long one queued client reply may block on a non-reading
/// client socket before the connection is severed.
const CLIENT_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

struct Shared {
    core: Mutex<NodeCore>,
    me: u32,
    /// Peer addresses, indexed by node id (`peers[me]` is this node).
    peers: Vec<String>,
    /// The shared-secret auth token; when set, peer links must prove
    /// it in their [`ClusterMsg::Hello`].
    auth: Option<String>,
    /// Per-connection reply streams. The inner mutex serializes the
    /// writers a connection can have (its own handler thread plus
    /// peer-reply dispatch) without holding the map lock across a
    /// potentially slow socket write.
    clients: Mutex<HashMap<ConnId, Arc<Mutex<TcpStream>>>>,
    links: Mutex<Vec<Option<mpsc::Sender<ClusterMsg>>>>,
    last_heard: Mutex<Vec<Option<Instant>>>,
    stopping: AtomicBool,
    next_conn: AtomicU64,
    tick: Duration,
    miss_limit: u32,
}

/// One running cluster node: listener, ticker, peer links.
pub struct ClusterServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ClusterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterServer")
            .field("addr", &self.addr)
            .field("me", &self.shared.me)
            .finish_non_exhaustive()
    }
}

impl ClusterServer {
    /// Binds `addr` and starts serving node `config.me` of the peer
    /// set `peers` (addresses indexed by node id; the entry for this
    /// node is ignored). Heartbeats every [`DEFAULT_TICK`].
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start(
        addr: &str,
        peers: Vec<String>,
        config: ClusterConfig,
    ) -> io::Result<ClusterServer> {
        ClusterServer::start_with(addr, peers, config, DEFAULT_TICK, DEFAULT_MISS_LIMIT)
    }

    /// [`ClusterServer::start`] with an explicit heartbeat cadence
    /// and missed-tick budget (tests shrink both).
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start_with(
        addr: &str,
        peers: Vec<String>,
        config: ClusterConfig,
        tick: Duration,
        miss_limit: u32,
    ) -> io::Result<ClusterServer> {
        assert_eq!(
            peers.len(),
            config.nodes,
            "one peer address per node (own slot included)"
        );
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let me = config.me;
        let nodes = config.nodes;
        let auth = config.auth.clone();
        let shared = Arc::new(Shared {
            core: Mutex::new(NodeCore::new(config)),
            me,
            peers,
            auth,
            clients: Mutex::new(HashMap::new()),
            links: Mutex::new(vec![None; nodes]),
            last_heard: Mutex::new(vec![None; nodes]),
            stopping: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            tick,
            miss_limit,
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || accept_loop(&shared, &listener)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || ticker_loop(&shared)));
        }
        Ok(ClusterServer {
            shared,
            addr: local,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's index.
    pub fn node(&self) -> u32 {
        self.shared.me
    }

    /// `true` once the node is stopping (a client sent `shutdown`, or
    /// [`ClusterServer::shutdown`]/[`ClusterServer::abort`] ran).
    pub fn stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// Stops the node and joins its threads.
    pub fn shutdown(mut self) {
        stop(&self.shared, self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Kills the node abruptly: no goodbyes, queued peer messages
    /// dropped, connections die mid-stream. Peers find out the hard
    /// way — via missed heartbeats. This is the failover test's
    /// murder weapon.
    pub fn abort(mut self) {
        stop(&self.shared, self.addr);
        // Join anyway (threads exit fast on the stop flag); "abrupt"
        // is about what peers observe, not about leaking threads.
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the node stops on its own (client `shutdown`).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn stop(shared: &Shared, addr: SocketAddr) {
    shared.stopping.store(true, Ordering::SeqCst);
    // Unblock the accept loop.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        handlers.push(thread::spawn(move || handle_conn(&shared, stream)));
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn ticker_loop(shared: &Arc<Shared>) {
    while !shared.stopping.load(Ordering::SeqCst) {
        thread::sleep(shared.tick);
        feed(shared, NodeCore::tick);
        // Failure detection: silent-too-long peers die. `None` means
        // never heard from — a node that hasn't joined yet is not
        // dead, just late.
        let deadline = shared.tick * shared.miss_limit;
        let overdue: Vec<u32> = {
            let heard = shared.last_heard.lock().expect("last_heard lock");
            heard
                .iter()
                .enumerate()
                .filter(|&(node, t)| {
                    node as u32 != shared.me && t.map(|t| t.elapsed() > deadline).unwrap_or(false)
                })
                .map(|(node, _)| node as u32)
                .collect()
        };
        for dead in overdue {
            shared.last_heard.lock().expect("last_heard lock")[dead as usize] = None;
            feed(shared, |core| core.fail_node(dead));
        }
    }
}

/// Feeds the core under its lock, queues peer messages **before
/// unlocking** (cheap in-memory channel pushes — that single
/// serialization point keeps per-link peer channels FIFO across
/// concurrently-served client connections), and writes client
/// replies only *after* dropping the lock, so one client that stops
/// reading can never stall request processing, heartbeats or failure
/// detection behind a blocked socket write.
fn feed(shared: &Arc<Shared>, f: impl FnOnce(&mut NodeCore)) {
    let mut replies: Vec<(ConnId, String)> = Vec::new();
    let mut shutdown = false;
    {
        let mut core = shared.core.lock().expect("core lock");
        f(&mut core);
        for out in core.drain() {
            match out {
                Output::Client(conn, text) => replies.push((conn, text)),
                Output::Peer(node, msg) => send_peer(shared, node, msg),
                Output::Shutdown => shutdown = true,
            }
        }
    }
    for (conn, text) in replies {
        write_client(shared, conn, &text);
    }
    if shutdown {
        shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop (the `stop()` trick) so `join()`
        // returns; without this the node would only actually die on
        // the next inbound connection.
        let _ = TcpStream::connect(&shared.peers[shared.me as usize]);
    }
}

/// Writes one reply to a client connection. The per-connection mutex
/// serializes concurrent repliers, the stream's write timeout bounds
/// how long a wedged client can hold it, and a failed write severs
/// the socket so the reader side drops the connection.
fn write_client(shared: &Arc<Shared>, conn: ConnId, text: &str) {
    let stream = {
        let clients = shared.clients.lock().expect("clients lock");
        clients.get(&conn).cloned()
    };
    let Some(stream) = stream else { return };
    let mut stream = stream.lock().expect("client stream lock");
    if stream.write_all(text.as_bytes()).is_err() {
        // A dead (or non-reading, after the timeout) client is the
        // client's problem.
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Queues `msg` on the (lazily created) persistent link to `node`.
fn send_peer(shared: &Arc<Shared>, node: u32, msg: ClusterMsg) {
    let sender = {
        let mut links = shared.links.lock().expect("links lock");
        if links[node as usize].is_none() {
            let (tx, rx) = mpsc::channel::<ClusterMsg>();
            let addr = shared.peers[node as usize].clone();
            let shared = Arc::clone(shared);
            thread::spawn(move || peer_writer(&shared, &addr, &rx));
            links[node as usize] = Some(tx);
        }
        links[node as usize].clone().expect("just ensured")
    };
    // A dead writer means a dead peer; the ticker will notice.
    let _ = sender.send(msg);
}

/// Owns one outbound peer connection: connect (with retries — peers
/// boot in some order), introduce ourselves, then drain the channel
/// in order.
fn peer_writer(shared: &Arc<Shared>, addr: &str, rx: &mpsc::Receiver<ClusterMsg>) {
    let mut stream = None;
    for _ in 0..shared.miss_limit.max(1) * 4 {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => thread::sleep(shared.tick / 2),
        }
    }
    let Some(mut stream) = stream else { return };
    let hello = wire::encode_cluster(&ClusterMsg::Hello {
        node: shared.me,
        auth: shared
            .auth
            .as_deref()
            .unwrap_or_default()
            .as_bytes()
            .to_vec(),
    })
    .expect("a Hello always encodes");
    if stream.write_all(&hello).is_err() {
        return;
    }
    while let Ok(msg) = rx.recv() {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let Ok(bytes) = wire::encode_cluster(&msg) else {
            continue;
        };
        if stream.write_all(&bytes).is_err() {
            // The peer hung up; drop the backlog (crash model) and
            // let the ticker's heartbeat timeout make it official.
            return;
        }
    }
}

/// Serves one inbound connection — client or peer, decided message
/// by message from the first byte.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(shared.tick));
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        let _ = clone.set_write_timeout(Some(CLIENT_WRITE_TIMEOUT));
        shared
            .clients
            .lock()
            .expect("clients lock")
            .insert(conn, Arc::new(Mutex::new(clone)));
    }
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Whether this connection may speak the peer plane: trivially yes
    // without an auth token, otherwise only after a Hello proving it.
    let mut peer_ok = shared.auth.is_none();
    'serve: loop {
        // Drain every complete message already buffered.
        loop {
            if buf.is_empty() {
                break;
            }
            match buf[0] {
                CLUSTER_MAGIC => match wire::try_cluster(&buf) {
                    Ok(Some((msg, used))) => {
                        buf.drain(..used);
                        if let ClusterMsg::Hello { auth, .. } = &msg {
                            let want = shared.auth.as_deref().unwrap_or_default();
                            if constant_time_eq(want.as_bytes(), auth) {
                                peer_ok = true;
                            } else {
                                feed(shared, NodeCore::peer_auth_failed);
                                break 'serve;
                            }
                        } else if !peer_ok {
                            // Peer traffic without a proven Hello is an
                            // unauthenticated client poking the peer
                            // plane (forwards would bypass the auth
                            // gate, replication messages would corrupt
                            // replica state). Kill the link.
                            feed(shared, NodeCore::peer_auth_failed);
                            break 'serve;
                        }
                        peer_message(shared, msg);
                    }
                    Ok(None) => break,
                    Err(_) => break 'serve,
                },
                FRAME_MAGIC | MULTI_MAGIC => match wire::try_message(&buf) {
                    Ok(Some((msg, used))) => {
                        buf.drain(..used);
                        let frames = match msg {
                            wire::WireMessage::Single(f) => vec![f],
                            wire::WireMessage::Multi(fs) => fs,
                        };
                        for f in frames {
                            feed(shared, |core| {
                                core.client_frame(conn, f.session, &f.events);
                            });
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = stream.write_all(format!("err {e}\n").as_bytes());
                        break 'serve;
                    }
                },
                _ => {
                    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                        break;
                    };
                    let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                    buf.drain(..=nl);
                    feed(shared, |core| core.client_line(conn, &line));
                }
            }
        }
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    shared.clients.lock().expect("clients lock").remove(&conn);
    feed(shared, |core| core.client_closed(conn));
}

/// Routes one inbound peer message: liveness bookkeeping here, the
/// decision-making in the core.
fn peer_message(shared: &Arc<Shared>, msg: ClusterMsg) {
    let sender = match &msg {
        ClusterMsg::Hello { node, .. }
        | ClusterMsg::Heartbeat { node }
        | ClusterMsg::StableVector { node, .. } => Some(*node),
        ClusterMsg::ForwardLine { origin, .. }
        | ClusterMsg::ForwardFrame { origin, .. }
        | ClusterMsg::ReplFrame { origin, .. }
        | ClusterMsg::ReplText { origin, .. }
        | ClusterMsg::Delta { origin, .. }
        | ClusterMsg::Retire { origin, .. } => Some(*origin),
        ClusterMsg::Reply { .. } | ClusterMsg::Assign { .. } | ClusterMsg::Evicted { .. } => None,
    };
    if let Some(node) = sender {
        if let Some(slot) = shared
            .last_heard
            .lock()
            .expect("last_heard lock")
            .get_mut(node as usize)
        {
            *slot = Some(Instant::now());
        }
    }
    feed(shared, |core| core.peer_msg(msg));
}
