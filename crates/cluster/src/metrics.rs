//! The `tc_cluster_*` metric bundle.
//!
//! Every [`NodeCore`](crate::NodeCore) owns a [`Registry`] and keeps
//! these counters current as it routes, replicates and fails over;
//! the cluster server answers the same `metrics` handshake line as
//! the single-node service, so one scrape of any node shows both its
//! session-level `tc_*` series and the cluster-level ones below.

use tc_telemetry::{labeled, Counter, Gauge, Registry};

/// Cluster-plane counters and gauges, all registered eagerly so a
/// scrape shows zeros instead of absent series.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Client requests forwarded to a remote owner (lines + frames).
    pub forwards: Counter,
    /// Replication payloads shipped to a replica (frames + text).
    pub repl_payloads: Counter,
    /// Checkpoint deltas shipped to a replica.
    pub deltas: Counter,
    /// Bytes of delta middles shipped — the replication wire cost.
    pub delta_bytes: Counter,
    /// Bytes the same checkpoints would have cost shipped whole; the
    /// ratio against `delta_bytes` is the stable-prefix GC win.
    pub checkpoint_bytes: Counter,
    /// Node deaths this node has acted on.
    pub failovers: Counter,
    /// Sessions promoted from replica to owner after a failover.
    pub promotions: Counter,
    /// Promotions that found no usable checkpoint base (owner died
    /// before the open snapshot replicated, or the base was corrupt)
    /// — each one is a session lost to the failover.
    pub promotions_failed: Counter,
    /// Times this node fenced itself off after learning peers had
    /// declared it dead and failed its sessions over.
    pub fenced: Counter,
    /// Replayed in-flight payloads during promotions.
    pub replayed: Counter,
    /// Heartbeats emitted.
    pub heartbeats: Counter,
    /// Sessions this node currently owns.
    pub sessions_owned: Gauge,
    /// Sessions this node currently holds replica state for.
    pub sessions_replicated: Gauge,
    /// Rejected auth attempts and refused auth-gated admin commands,
    /// mirrored from the single-node service's labeling scheme.
    pub auth_errors: Counter,
}

impl ClusterMetrics {
    /// Registers the bundle in `registry`.
    pub fn new(registry: &Registry) -> ClusterMetrics {
        ClusterMetrics {
            forwards: registry.counter("tc_cluster_forwards_total"),
            repl_payloads: registry.counter("tc_cluster_repl_payloads_total"),
            deltas: registry.counter("tc_cluster_deltas_total"),
            delta_bytes: registry.counter("tc_cluster_delta_bytes_total"),
            checkpoint_bytes: registry.counter("tc_cluster_checkpoint_bytes_total"),
            failovers: registry.counter("tc_cluster_failovers_total"),
            promotions: registry.counter("tc_cluster_promotions_total"),
            promotions_failed: registry.counter("tc_cluster_promotions_failed_total"),
            fenced: registry.counter("tc_cluster_fenced_total"),
            replayed: registry.counter("tc_cluster_replayed_payloads_total"),
            heartbeats: registry.counter("tc_cluster_heartbeats_total"),
            sessions_owned: registry.gauge("tc_cluster_sessions_owned"),
            sessions_replicated: registry.gauge("tc_cluster_sessions_replicated"),
            auth_errors: registry.counter(&labeled("tc_wire_errors_total", &[("kind", "auth")])),
        }
    }
}
