//! [`NodeCore`] — one cluster node's brain, free of any I/O.
//!
//! The core is a deterministic state machine: the transport (socket
//! server or the in-process [`LocalCluster`]) feeds it client lines,
//! client frames and peer messages, and collects the [`Output`]s it
//! queued — text back to clients, [`ClusterMsg`]s to peers. Keeping
//! every routing, replication and failover decision in one
//! single-threaded, transport-agnostic type is what lets the
//! conformance suite drive a whole ring in-process and byte-compare
//! its answers against the batch pipeline.
//!
//! Responsibilities, in the order a request meets them:
//!
//! 1. **Gateway**: any node accepts any client. Handshake lines
//!    (`auth`, `open`, `use`, `metrics`, `shutdown`, `ring`,
//!    `handoff`) are answered here; session traffic is routed by the
//!    consistent-hash [`HashRing`] (plus the handoff
//!    [`assignments`](NodeCore) override) and forwarded to the owner
//!    over a FIFO peer link when it is remote. Replies ride back on
//!    tokens, so the client never learns which node did the work.
//! 2. **Owner**: runs the [`Session`], counts its payloads
//!    (`frame_seq`), mirrors every payload to the ring-successor
//!    replica, and every `delta_every` payloads ships a TCCP
//!    checkpoint as a byte [`ByteDelta`] against the newest
//!    stability-acknowledged base.
//! 3. **Replica**: holds materialized checkpoint bases plus the tail
//!    of raw payloads past the newest base, acknowledging applied
//!    link sequence numbers through its gossiped [`MatrixClock`] row.
//! 4. **Failover**: when the ring declares a node dead, each key the
//!    dead node owned lands — by ring construction — on the node
//!    already holding its replica, which resumes from the newest
//!    base, silently replays the tail, and starts replicating to its
//!    own successor. Race reports come out identical to an
//!    uninterrupted run.
//!
//! [`LocalCluster`]: crate::testing::LocalCluster

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use tc_stream::checkpoint::Checkpoint;
use tc_stream::session::Session;
use tc_stream::{constant_time_eq, parse_open};
use tc_telemetry::{NullRecorder, Registry};
use tc_trace::{ClusterMsg, Event};

use crate::delta::ByteDelta;
use crate::matrix::MatrixClock;
use crate::metrics::ClusterMetrics;
use crate::ring::HashRing;
use crate::ClusterConfig;

/// A transport-assigned client-connection handle; the core only ever
/// echoes it back in [`Output::Client`].
pub type ConnId = u64;

/// One queued effect of feeding the core.
#[derive(Debug, Clone)]
pub enum Output {
    /// Write `text` to client connection `0` (possibly multi-line,
    /// already newline-terminated).
    Client(ConnId, String),
    /// Send a cluster message to peer node `0`. Links are FIFO; the
    /// protocol depends on per-link ordering and nothing else.
    Peer(u32, ClusterMsg),
    /// This node must stop serving: a (successfully authed) client
    /// asked it to shut down, or a peer's [`ClusterMsg::Evicted`]
    /// notice revealed the ring has already failed this node over —
    /// continuing would split the brain, so it fences itself.
    Shutdown,
}

/// Per-client-connection state at the gateway.
#[derive(Debug, Default)]
struct ConnState {
    /// Session bare text lines are bound to (`open`/`use` set it).
    current: Option<u64>,
    /// Whether `auth` succeeded on this connection.
    authed: bool,
}

/// A raw replicated payload — exactly what the owner applied.
#[derive(Debug, Clone)]
enum Payload {
    /// A protocol text line (event syntax; interned by the session).
    Text(String),
    /// A binary frame's event batch.
    Frame(Vec<Event>),
}

/// Owner-side state for a session this node runs.
struct Owned {
    session: Session,
    /// Payloads applied so far — the replication stream's clock.
    frame_seq: u64,
    /// Current replica node (`None` only when this node is the sole
    /// survivor).
    target: Option<u32>,
    /// Newest checkpoint the replica has *acknowledged* materializing
    /// (via the matrix clock); deltas are diffed against it.
    base_bytes: Vec<u8>,
    /// `frame_seq` the acknowledged base was taken at (0 = empty).
    base_seq: u64,
    /// Deltas shipped but not yet stability-acknowledged:
    /// `(link_seq, frame_seq, checkpoint_bytes)`. Stability promotes
    /// the newest covered entry to the new base and drops the rest —
    /// the matrix-clock stable-prefix GC.
    shipped: Vec<(u64, u64, Vec<u8>)>,
}

/// Replica-side state for a session owned elsewhere.
#[derive(Debug)]
struct Replica {
    /// The node currently shipping this stream (re-keyed on failover
    /// and handoff).
    origin: u32,
    /// Materialized checkpoints `(frame_seq, bytes)`, ascending. The
    /// owner's `base_seq` names one of these; older entries are
    /// dropped as the owner's base advances.
    bases: Vec<(u64, Vec<u8>)>,
    /// Raw payloads past the newest base, `(frame_seq, payload)` —
    /// the in-flight tail a promotion replays.
    tail: Vec<(u64, Payload)>,
}

/// The deterministic, I/O-free core of one cluster node.
pub struct NodeCore {
    config: ClusterConfig,
    ring: HashRing,
    matrix: MatrixClock,
    registry: Registry,
    metrics: ClusterMetrics,
    conns: HashMap<ConnId, ConnState>,
    owned: HashMap<u64, Owned>,
    replicas: HashMap<u64, Replica>,
    /// Handoff overrides: session → owning node, consulted before the
    /// ring.
    assignments: HashMap<u64, u32>,
    /// Per-peer-link replication sequence counters (`sent[t]` = last
    /// seq shipped to node `t`).
    sent: Vec<u64>,
    /// Tokens for forwarded requests awaiting their [`ClusterMsg::Reply`]:
    /// token → (client connection, node the forward targeted). The
    /// target lets a failover fail these fast instead of leaving the
    /// client waiting on a reply that will never come.
    pending: HashMap<u64, (ConnId, u32)>,
    /// Sessions dropped during a failed promotion (the owner died
    /// before any checkpoint base reached the replica, or the base
    /// was corrupt). Kept so clients get an explicit "lost in
    /// failover" error instead of a generic unknown-session one.
    lost: HashSet<u64>,
    next_token: u64,
    /// Local session-id allocation counter (node-stamped: the id's
    /// residue mod the cluster size identifies the allocating node,
    /// so gateways never collide).
    next_id: u64,
    outputs: Vec<Output>,
}

impl std::fmt::Debug for NodeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCore")
            .field("me", &self.config.me)
            .field("nodes", &self.config.nodes)
            .field("owned", &self.owned.len())
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}

impl NodeCore {
    /// A fresh node for `config`, with every peer presumed live.
    pub fn new(config: ClusterConfig) -> NodeCore {
        assert!(
            (config.me as usize) < config.nodes,
            "node index {} out of range for {} nodes",
            config.me,
            config.nodes
        );
        let registry = if config.telemetry {
            Registry::new()
        } else {
            NullRecorder::registry()
        };
        let metrics = ClusterMetrics::new(&registry);
        NodeCore {
            ring: HashRing::new(config.nodes),
            matrix: MatrixClock::new(config.nodes, config.me),
            registry,
            metrics,
            conns: HashMap::new(),
            owned: HashMap::new(),
            replicas: HashMap::new(),
            assignments: HashMap::new(),
            sent: vec![0; config.nodes],
            pending: HashMap::new(),
            lost: HashSet::new(),
            next_token: 0,
            next_id: 0,
            outputs: Vec::new(),
            config,
        }
    }

    /// This node's index in the peer set.
    pub fn me(&self) -> u32 {
        self.config.me
    }

    /// The node's metric registry (served on the `metrics` line).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The node currently responsible for `session`: the handoff
    /// assignment if one exists, else ring placement. Every live node
    /// computes the same answer from the same ring + assignment state.
    pub fn place(&self, session: u64) -> u32 {
        self.assignments
            .get(&session)
            .copied()
            .filter(|&n| self.ring.is_live(n))
            .unwrap_or_else(|| self.ring.owner(session))
    }

    /// The replica target for `session` when owned by `owner`.
    pub fn replica_for(&self, session: u64, owner: u32) -> Option<u32> {
        self.ring.successor(session, owner)
    }

    /// `true` while this node runs `session` itself.
    pub fn owns(&self, session: u64) -> bool {
        self.owned.contains_key(&session)
    }

    /// `true` while this node holds replica state for `session`.
    pub fn holds_replica(&self, session: u64) -> bool {
        self.replicas.contains_key(&session)
    }

    /// Drains everything queued since the last drain.
    pub fn drain(&mut self) -> Vec<Output> {
        std::mem::take(&mut self.outputs)
    }

    /// Drops per-connection state after a client disconnect. Sessions
    /// survive their connections (the `use <id>` contract).
    pub fn client_closed(&mut self, conn: ConnId) {
        self.conns.remove(&conn);
        self.pending.retain(|_, (c, _)| *c != conn);
    }

    /// Counts a rejected peer-plane authentication (the transport
    /// detected a bad or missing [`ClusterMsg::Hello`] token before
    /// any message reached the core).
    pub fn peer_auth_failed(&mut self) {
        self.metrics.auth_errors.inc();
    }

    // ---- gateway: client traffic ------------------------------------

    /// Feeds one client text line.
    pub fn client_line(&mut self, conn: ConnId, line: &str) {
        let line = line.trim();
        if self.is_handshake(line) {
            self.handle_handshake(conn, line);
            return;
        }
        let Some(session) = self.conns.entry(conn).or_default().current else {
            self.reply(conn, "err no session bound; `open` or `use` first\n");
            return;
        };
        self.route_line(conn, session, line);
    }

    /// Feeds one client binary frame (already decoded by the
    /// transport). Frames address sessions explicitly.
    pub fn client_frame(&mut self, conn: ConnId, session: u64, events: &[Event]) {
        let owner = self.place(session);
        if owner == self.config.me {
            let out = self.apply_frame_owned(session, events);
            match out {
                Some(out) if !out.is_empty() => self.reply(conn, &out),
                Some(_) => {}
                None => {
                    let msg = self.unknown_session(session);
                    self.reply(conn, &msg);
                }
            }
        } else {
            let token = self.track(conn, owner);
            self.metrics.forwards.inc();
            self.push_peer(
                owner,
                ClusterMsg::ForwardFrame {
                    origin: self.config.me,
                    token,
                    session,
                    events: events.to_vec(),
                },
            );
        }
    }

    /// Routes a session-bound text line to its owner.
    fn route_line(&mut self, conn: ConnId, session: u64, line: &str) {
        let owner = self.place(session);
        if owner == self.config.me {
            match self.apply_line_owned(session, line) {
                Some(out) => {
                    if !out.is_empty() {
                        self.reply(conn, &out);
                    }
                }
                None => {
                    let msg = self.unknown_session(session);
                    self.reply(conn, &msg);
                }
            }
        } else {
            let token = self.track(conn, owner);
            self.metrics.forwards.inc();
            self.push_peer(
                owner,
                ClusterMsg::ForwardLine {
                    origin: self.config.me,
                    token,
                    session,
                    text: line.to_owned(),
                },
            );
        }
    }

    fn is_handshake(&self, line: &str) -> bool {
        let head = line.split_whitespace().next().unwrap_or("");
        matches!(
            head,
            "auth"
                | "open"
                | "use"
                | "resume"
                | "metrics"
                | "shutdown"
                | "ring"
                | "handoff"
                | "stats-all"
        )
    }

    fn handle_handshake(&mut self, conn: ConnId, line: &str) {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.split_first() {
            Some((&"auth", rest)) => {
                let token = rest.join(" ");
                match &self.config.auth {
                    Some(required) if !constant_time_eq(required.as_bytes(), token.as_bytes()) => {
                        self.metrics.auth_errors.inc();
                        self.reply(conn, "err bad auth token\n");
                    }
                    _ => {
                        self.conns.entry(conn).or_default().authed = true;
                        self.reply(conn, "ok authed\n");
                    }
                }
            }
            Some((&"open", rest)) => self.handle_open(conn, rest, line),
            Some((&"use", [id])) => match id.parse::<u64>() {
                Ok(id) => {
                    // The owner may be remote; binding is optimistic
                    // (first routed line surfaces an unknown id), but
                    // a locally-owned id is checked on the spot.
                    if self.place(id) == self.config.me && !self.owned.contains_key(&id) {
                        let msg = self.unknown_session(id);
                        self.reply(conn, &msg);
                    } else {
                        self.conns.entry(conn).or_default().current = Some(id);
                        self.reply(conn, &format!("ok session {id} attached\n"));
                    }
                }
                Err(_) => self.reply(conn, "err `use` takes a session id\n"),
            },
            Some((&"metrics", _)) => {
                let body = self.registry.render_prometheus();
                self.reply(conn, &body);
            }
            Some((&"shutdown", _)) => {
                if self.auth_gate(conn, "shutdown") {
                    self.reply(conn, "ok shutting-down\n");
                    self.outputs.push(Output::Shutdown);
                }
            }
            Some((&"ring", rest)) => self.handle_ring(conn, rest),
            Some((&"handoff", rest)) => self.handle_handoff_cmd(conn, rest),
            Some((&"resume", _)) | Some((&"stats-all", _)) => {
                self.reply(
                    conn,
                    &format!("err {} is not supported in cluster mode\n", parts[0]),
                );
            }
            _ => self.reply(conn, "err expected `open <order> <clock>`\n"),
        }
    }

    /// The error for a session this node should own but does not run:
    /// distinguishes "never existed here" from "dropped in a failover
    /// because no checkpoint base had been replicated yet".
    fn unknown_session(&self, id: u64) -> String {
        if self.lost.contains(&id) {
            format!("err session {id} lost in failover; no checkpoint base was replicated\n")
        } else {
            format!("err unknown session {id}\n")
        }
    }

    /// Refuses an auth-gated command on an unauthenticated connection
    /// when a token is configured. Returns `true` when allowed.
    fn auth_gate(&mut self, conn: ConnId, what: &str) -> bool {
        let authed = self.conns.entry(conn).or_default().authed;
        if self.config.auth.is_some() && !authed {
            self.metrics.auth_errors.inc();
            self.reply(conn, &format!("err auth required for {what}\n"));
            return false;
        }
        true
    }

    fn handle_open(&mut self, conn: ConnId, rest: &[&str], line: &str) {
        // Validate locally before allocating an id or forwarding —
        // gateway and owner run the same parser, so a forwarded open
        // can only fail if the owner dies mid-flight.
        if let Err(e) = parse_open(rest) {
            self.reply(conn, &format!("err {e}\n"));
            return;
        }
        // Node-stamped ids: residue mod the cluster size identifies
        // the allocating gateway, so concurrent opens on different
        // nodes never collide.
        self.next_id += 1;
        let id = u64::from(self.config.me) + self.config.nodes as u64 * self.next_id;
        self.conns.entry(conn).or_default().current = Some(id);
        let owner = self.place(id);
        if owner == self.config.me {
            let reply = self.open_owned(id, rest);
            self.reply(conn, &reply);
        } else {
            let token = self.track(conn, owner);
            self.metrics.forwards.inc();
            self.push_peer(
                owner,
                ClusterMsg::ForwardLine {
                    origin: self.config.me,
                    token,
                    session: id,
                    text: line.to_owned(),
                },
            );
        }
    }

    fn handle_ring(&mut self, conn: ConnId, rest: &[&str]) {
        if !self.auth_gate(conn, "ring") {
            return;
        }
        let reply = match rest {
            [] => {
                let live: Vec<String> = self.ring.live_nodes().iter().map(u32::to_string).collect();
                format!(
                    "ok ring nodes={} live={} me={}\n",
                    self.config.nodes,
                    live.join(","),
                    self.config.me
                )
            }
            [id] => match id.parse::<u64>() {
                Ok(id) => {
                    let owner = self.place(id);
                    match self.replica_for(id, owner) {
                        Some(r) => format!("ok session {id} owner {owner} replica {r}\n"),
                        None => format!("ok session {id} owner {owner} replica -\n"),
                    }
                }
                Err(_) => "err `ring` takes an optional session id\n".to_owned(),
            },
            _ => "err `ring` takes an optional session id\n".to_owned(),
        };
        self.reply(conn, &reply);
    }

    fn handle_handoff_cmd(&mut self, conn: ConnId, rest: &[&str]) {
        if !self.auth_gate(conn, "handoff") {
            return;
        }
        let Some(Ok(session)) = rest.first().map(|s| s.parse::<u64>()) else {
            self.reply(conn, "err `handoff` takes a session id\n");
            return;
        };
        let owner = self.place(session);
        if owner == self.config.me {
            let reply = self.handoff_owned(session);
            self.reply(conn, &reply);
        } else {
            // The owner executes handoffs; forward the command line.
            let token = self.track(conn, owner);
            self.metrics.forwards.inc();
            self.push_peer(
                owner,
                ClusterMsg::ForwardLine {
                    origin: self.config.me,
                    token,
                    session,
                    text: format!("handoff {session}"),
                },
            );
        }
    }

    // ---- owner: sessions, replication, handoff ----------------------

    /// Opens session `id` locally and ships its initial snapshot to
    /// the replica, so every session is recoverable from frame one.
    fn open_owned(&mut self, id: u64, rest: &[&str]) -> String {
        match parse_open(rest) {
            Ok((clock, config)) => {
                let session = Session::new(id, clock, config);
                let reply = format!(
                    "ok session {id} order {} clock {}\n",
                    config.order,
                    session.detector().backend_name()
                );
                let target = self.replica_for(id, self.config.me);
                self.owned.insert(
                    id,
                    Owned {
                        session,
                        frame_seq: 0,
                        target,
                        base_bytes: Vec::new(),
                        base_seq: 0,
                        shipped: Vec::new(),
                    },
                );
                self.metrics.sessions_owned.add(1);
                self.ship_delta(id);
                reply
            }
            Err(e) => format!("err {e}\n"),
        }
    }

    /// Applies a text line to an owned session, replicating it when
    /// it is a payload. Returns `None` for an unknown session.
    fn apply_line_owned(&mut self, id: u64, line: &str) -> Option<String> {
        let own = self.owned.get_mut(&id)?;
        let mut out = String::new();
        let open = own.session.handle_line(line, &mut out);
        if is_payload(line) {
            own.frame_seq += 1;
            let frame_seq = own.frame_seq;
            self.replicate(id, frame_seq, Payload::Text(line.to_owned()));
        } else if !open {
            self.retire_owned(id);
        }
        Some(out)
    }

    /// Applies a frame to an owned session and replicates it.
    fn apply_frame_owned(&mut self, id: u64, events: &[Event]) -> Option<String> {
        let own = self.owned.get_mut(&id)?;
        let mut out = String::new();
        own.session.handle_frame(events, &mut out);
        own.frame_seq += 1;
        let frame_seq = own.frame_seq;
        self.replicate(id, frame_seq, Payload::Frame(events.to_vec()));
        Some(out)
    }

    /// Mirrors one applied payload to the replica and, on the delta
    /// cadence, ships a checkpoint delta behind it.
    fn replicate(&mut self, id: u64, frame_seq: u64, payload: Payload) {
        let Some(target) = self.owned[&id].target else {
            return;
        };
        let seq = self.next_seq(target);
        let msg = match payload {
            Payload::Text(text) => ClusterMsg::ReplText {
                origin: self.config.me,
                seq,
                session: id,
                frame_seq,
                text,
            },
            Payload::Frame(events) => ClusterMsg::ReplFrame {
                origin: self.config.me,
                seq,
                session: id,
                frame_seq,
                events,
            },
        };
        self.metrics.repl_payloads.inc();
        self.push_peer(target, msg);
        if frame_seq.is_multiple_of(self.config.delta_every) {
            self.ship_delta(id);
        }
    }

    /// Ships the session's current checkpoint to its replica as a
    /// delta against the newest stability-acknowledged base.
    fn ship_delta(&mut self, id: u64) {
        let own = self.owned.get_mut(&id).expect("delta for owned session");
        let Some(target) = own.target else {
            return;
        };
        let bytes = own.session.checkpoint().to_bytes();
        let diff = ByteDelta::diff(&own.base_bytes, &bytes);
        let frame_seq = own.frame_seq;
        let base_seq = own.base_seq;
        self.metrics.deltas.inc();
        self.metrics.delta_bytes.add(diff.len() as u64);
        self.metrics.checkpoint_bytes.add(bytes.len() as u64);
        let seq = self.next_seq(target);
        self.owned
            .get_mut(&id)
            .expect("still owned")
            .shipped
            .push((seq, frame_seq, bytes));
        self.push_peer(
            target,
            ClusterMsg::Delta {
                origin: self.config.me,
                seq,
                session: id,
                frame_seq,
                base_seq,
                bytes: diff.to_bytes(),
            },
        );
    }

    /// Drops a closed session and tells the replica to do the same.
    fn retire_owned(&mut self, id: u64) {
        let Some(own) = self.owned.remove(&id) else {
            return;
        };
        self.metrics.sessions_owned.sub(1);
        self.assignments.remove(&id);
        if let Some(target) = own.target {
            let seq = self.next_seq(target);
            self.push_peer(
                target,
                ClusterMsg::Retire {
                    origin: self.config.me,
                    seq,
                    session: id,
                },
            );
        }
    }

    /// Hands an owned session to its replica: final full-state delta,
    /// then an assignment broadcast. The peer link's FIFO order
    /// guarantees the target materializes the state before it sees
    /// the assignment that promotes it.
    fn handoff_owned(&mut self, id: u64) -> String {
        if !self.owned.contains_key(&id) {
            return self.unknown_session(id);
        }
        let Some(target) = self.owned[&id].target else {
            return "err no live replica to hand off to\n".to_owned();
        };
        // Reset the delta base so the closing delta carries the whole
        // checkpoint — the target may be arbitrarily far behind.
        {
            let own = self.owned.get_mut(&id).expect("checked owned");
            own.base_bytes = Vec::new();
            own.base_seq = 0;
            own.shipped.clear();
        }
        self.ship_delta(id);
        self.assignments.insert(id, target);
        for peer in self.ring.live_nodes() {
            if peer != self.config.me {
                self.push_peer(
                    peer,
                    ClusterMsg::Assign {
                        session: id,
                        node: target,
                    },
                );
            }
        }
        self.owned.remove(&id);
        self.metrics.sessions_owned.sub(1);
        format!("ok handoff {id} -> node {target}\n")
    }

    // ---- peer plane -------------------------------------------------

    /// Feeds one decoded peer message.
    pub fn peer_msg(&mut self, msg: ClusterMsg) {
        // Traffic from a node this ring has already evicted means the
        // "dead" peer is in fact still running (a long stall, a
        // partition). Processing it would resurrect replica state or
        // answer a split brain's forwards; instead repeat the
        // eviction notice so the zombie fences itself off. Eviction
        // is permanent — the failure model is crash-stop.
        let claimed = match &msg {
            ClusterMsg::Hello { node, .. }
            | ClusterMsg::Heartbeat { node }
            | ClusterMsg::StableVector { node, .. } => Some(*node),
            ClusterMsg::ForwardLine { origin, .. }
            | ClusterMsg::ForwardFrame { origin, .. }
            | ClusterMsg::ReplFrame { origin, .. }
            | ClusterMsg::ReplText { origin, .. }
            | ClusterMsg::Delta { origin, .. }
            | ClusterMsg::Retire { origin, .. } => Some(*origin),
            ClusterMsg::Reply { .. } | ClusterMsg::Assign { .. } | ClusterMsg::Evicted { .. } => {
                None
            }
        };
        if let Some(node) = claimed {
            if node != self.config.me && !self.ring.is_live(node) {
                self.push_peer(node, ClusterMsg::Evicted { node });
                return;
            }
        }
        match msg {
            ClusterMsg::Hello { .. } | ClusterMsg::Heartbeat { .. } => {
                // Liveness bookkeeping belongs to the transport; the
                // core only acts on `fail_node`.
            }
            ClusterMsg::Evicted { node } => {
                if node == self.config.me {
                    // A peer failed this node over while it was still
                    // running: self-fence rather than keep serving
                    // divergent state to connected clients.
                    self.metrics.fenced.inc();
                    self.outputs.push(Output::Shutdown);
                }
            }
            ClusterMsg::ForwardLine {
                origin,
                token,
                session,
                text,
            } => {
                self.forwarded_line(origin, token, session, &text);
            }
            ClusterMsg::ForwardFrame {
                origin,
                token,
                session,
                events,
            } => {
                if self.place(session) != self.config.me {
                    // Stale routing (handoff or failover in flight):
                    // chain-forward; the reply flows straight back to
                    // the originating gateway.
                    let owner = self.place(session);
                    self.push_peer(
                        owner,
                        ClusterMsg::ForwardFrame {
                            origin,
                            token,
                            session,
                            events,
                        },
                    );
                    return;
                }
                let reply = match self.apply_frame_owned(session, &events) {
                    Some(out) => out,
                    None => self.unknown_session(session),
                };
                self.push_peer(origin, ClusterMsg::Reply { token, text: reply });
            }
            ClusterMsg::Reply { token, text } => {
                if let Some((conn, _)) = self.pending.remove(&token) {
                    if !text.is_empty() {
                        self.reply(conn, &text);
                    }
                }
            }
            ClusterMsg::ReplText {
                origin,
                seq,
                session,
                frame_seq,
                text,
            } => {
                self.matrix.record(origin, seq);
                self.replica_payload(origin, session, frame_seq, Payload::Text(text));
            }
            ClusterMsg::ReplFrame {
                origin,
                seq,
                session,
                frame_seq,
                events,
            } => {
                self.matrix.record(origin, seq);
                self.replica_payload(origin, session, frame_seq, Payload::Frame(events));
            }
            ClusterMsg::Delta {
                origin,
                seq,
                session,
                frame_seq,
                base_seq,
                bytes,
            } => {
                self.matrix.record(origin, seq);
                if let Some(diff) = ByteDelta::from_bytes(&bytes) {
                    self.replica_delta(origin, session, frame_seq, base_seq, diff);
                }
            }
            ClusterMsg::Retire {
                origin,
                seq,
                session,
            } => {
                self.matrix.record(origin, seq);
                if self.replicas.remove(&session).is_some() {
                    self.metrics.sessions_replicated.sub(1);
                }
                self.assignments.remove(&session);
            }
            ClusterMsg::StableVector { node, seen } => {
                self.matrix.merge_row(node, &seen);
                self.promote_stable_bases();
            }
            ClusterMsg::Assign { session, node } => {
                self.assignments.insert(session, node);
                if node == self.config.me {
                    // The final delta preceded this assignment on the
                    // same FIFO link, so the replica state is current.
                    self.promote_replica(session);
                }
            }
        }
    }

    /// Runs a forwarded text line as the owner (re-forwarding when
    /// routing moved underneath the sender).
    fn forwarded_line(&mut self, origin: u32, token: u64, session: u64, text: &str) {
        if self.place(session) != self.config.me {
            let owner = self.place(session);
            self.push_peer(
                owner,
                ClusterMsg::ForwardLine {
                    origin,
                    token,
                    session,
                    text: text.to_owned(),
                },
            );
            return;
        }
        let head = text.split_whitespace().next().unwrap_or("");
        let reply = if head == "open" {
            // A forwarded open carries the gateway-allocated id.
            let parts: Vec<&str> = text.split_whitespace().skip(1).collect();
            self.open_owned(session, &parts)
        } else if head == "handoff" {
            self.handoff_owned(session)
        } else {
            match self.apply_line_owned(session, text) {
                Some(out) => out,
                None => self.unknown_session(session),
            }
        };
        self.push_peer(origin, ClusterMsg::Reply { token, text: reply });
    }

    // ---- replica plane ----------------------------------------------

    fn replica_entry(&mut self, origin: u32, session: u64) -> &mut Replica {
        let fresh = match self.replicas.get(&session) {
            // A new origin (failover/handoff re-replication) starts a
            // new era; stale state from the old owner is dropped.
            Some(r) => r.origin != origin,
            None => {
                self.metrics.sessions_replicated.add(1);
                true
            }
        };
        if fresh {
            self.replicas.insert(
                session,
                Replica {
                    origin,
                    bases: Vec::new(),
                    tail: Vec::new(),
                },
            );
        }
        self.replicas.get_mut(&session).expect("just ensured")
    }

    fn replica_payload(&mut self, origin: u32, session: u64, frame_seq: u64, payload: Payload) {
        let r = self.replica_entry(origin, session);
        r.tail.push((frame_seq, payload));
    }

    fn replica_delta(
        &mut self,
        origin: u32,
        session: u64,
        frame_seq: u64,
        base_seq: u64,
        diff: ByteDelta,
    ) {
        let r = self.replica_entry(origin, session);
        let base: &[u8] = if base_seq == 0 {
            &[]
        } else {
            match r.bases.iter().find(|&&(seq, _)| seq == base_seq) {
                Some((_, bytes)) => bytes,
                // Unknown base: a re-replication snapshot will follow
                // after the next failover/handoff; drop the delta.
                None => return,
            }
        };
        let Some(bytes) = diff.apply(base) else {
            return;
        };
        // The owner's acknowledged base only advances, so everything
        // older than this delta's base is garbage — the stable-prefix
        // truncation, mirrored on the replica.
        r.bases
            .retain(|&(seq, _)| seq >= base_seq && seq < frame_seq);
        r.bases.push((frame_seq, bytes));
        // Payloads the checkpoint already covers are no longer
        // in-flight.
        r.tail.retain(|&(seq, _)| seq > frame_seq);
    }

    /// Promotes a replica to owner: resume the newest base, silently
    /// replay the in-flight tail, and start replicating onward.
    fn promote_replica(&mut self, session: u64) {
        let Some(r) = self.replicas.remove(&session) else {
            return;
        };
        self.metrics.sessions_replicated.sub(1);
        let Some((base_seq, bytes)) = r.bases.last() else {
            // The owner died before its open snapshot reached this
            // replica; the raw tail alone cannot rebuild the session
            // (the open config lives in the checkpoint). The session
            // is lost — count it and remember the id so clients get
            // an explicit error, not a generic unknown-session one.
            self.metrics.promotions_failed.inc();
            self.lost.insert(session);
            return;
        };
        let Ok(cp) = Checkpoint::from_bytes(bytes) else {
            self.metrics.promotions_failed.inc();
            self.lost.insert(session);
            return;
        };
        let mut session_state = Session::from_checkpoint(session, &cp);
        let mut frame_seq = *base_seq;
        let mut sink = String::new();
        for (seq, payload) in &r.tail {
            if *seq <= frame_seq {
                continue;
            }
            sink.clear();
            match payload {
                Payload::Text(text) => {
                    session_state.handle_line(text, &mut sink);
                }
                Payload::Frame(events) => session_state.handle_frame(events, &mut sink),
            }
            frame_seq = *seq;
            self.metrics.replayed.inc();
        }
        self.metrics.promotions.inc();
        let target = self.replica_for(session, self.config.me);
        self.owned.insert(
            session,
            Owned {
                session: session_state,
                frame_seq,
                target,
                base_bytes: Vec::new(),
                base_seq: 0,
                shipped: Vec::new(),
            },
        );
        self.metrics.sessions_owned.add(1);
        self.assignments.insert(session, self.config.me);
        // Re-replicate in full so the session is again failure-proof.
        self.ship_delta(session);
    }

    // ---- stability, ticks, failover ---------------------------------

    /// Applies the matrix clock's stable prefix: any shipped delta the
    /// replica's gossiped row covers becomes the new diff base, and
    /// older retained checkpoints are truncated.
    fn promote_stable_bases(&mut self) {
        for own in self.owned.values_mut() {
            let Some(target) = own.target else { continue };
            let acked = self.matrix.applied(target, self.config.me);
            let mut newest: Option<(u64, Vec<u8>)> = None;
            own.shipped.retain_mut(|(seq, frame_seq, bytes)| {
                if *seq <= acked {
                    newest = Some((*frame_seq, std::mem::take(bytes)));
                    false
                } else {
                    true
                }
            });
            if let Some((frame_seq, bytes)) = newest {
                own.base_seq = frame_seq;
                own.base_bytes = bytes;
            }
        }
    }

    /// Periodic work: heartbeat + matrix-row gossip to every live
    /// peer. The transport decides the cadence.
    pub fn tick(&mut self) {
        let row = self.matrix.own_row().to_vec();
        for peer in self.ring.live_nodes() {
            if peer == self.config.me {
                continue;
            }
            self.metrics.heartbeats.inc();
            self.push_peer(
                peer,
                ClusterMsg::Heartbeat {
                    node: self.config.me,
                },
            );
            self.push_peer(
                peer,
                ClusterMsg::StableVector {
                    node: self.config.me,
                    seen: row.clone(),
                },
            );
        }
    }

    /// Acts on a peer's death: re-route its keys, promote the replicas
    /// this node holds for it, and re-target replication streams that
    /// pointed at it. Deterministic — every survivor makes the same
    /// decisions from the same ring.
    pub fn fail_node(&mut self, dead: u32) {
        if dead == self.config.me || !self.ring.is_live(dead) {
            return;
        }
        self.metrics.failovers.inc();
        // Forwards in flight to the dead node will never be answered;
        // fail them fast with a retryable error so synchronous
        // clients don't hang across the failover window.
        let orphaned: Vec<u64> = self
            .pending
            .iter()
            .filter(|&(_, &(_, target))| target == dead)
            .map(|(&token, _)| token)
            .collect();
        for token in orphaned {
            let (conn, _) = self.pending.remove(&token).expect("listed above");
            self.reply(conn, "err failover in progress; retry\n");
        }
        // Handoff assignments pinned to the dead node move to the
        // replica holder — the first distinct live node clockwise,
        // computed while the dead node still occupies the ring so the
        // answer matches where replication was actually flowing.
        let reassign: Vec<u64> = self
            .assignments
            .iter()
            .filter(|&(_, &o)| o == dead)
            .map(|(&s, _)| s)
            .collect();
        for s in reassign {
            if let Some(next) = self.ring.successor(s, dead) {
                self.assignments.insert(s, next);
            } else {
                self.assignments.remove(&s);
            }
        }
        self.ring.remove(dead);
        self.matrix.mark_dead(dead);
        // Promote every replica whose stream originated at the dead
        // node and now routes here. (Ring-placed keys land here by
        // construction; assigned keys by the rewrite above.)
        let candidates: Vec<u64> = self
            .replicas
            .iter()
            .filter(|&(_, r)| r.origin == dead)
            .map(|(&s, _)| s)
            .collect();
        for s in candidates {
            if self.place(s) == self.config.me {
                self.promote_replica(s);
            } else {
                // Someone else owns it now; this copy is stale.
                if self.replicas.remove(&s).is_some() {
                    self.metrics.sessions_replicated.sub(1);
                }
            }
        }
        // Streams this node was replicating *to* the dead node must
        // find a new home and restart from a full snapshot.
        let retarget: Vec<u64> = self
            .owned
            .iter()
            .filter(|&(_, o)| o.target == Some(dead))
            .map(|(&s, _)| s)
            .collect();
        for s in retarget {
            let own = self.owned.get_mut(&s).expect("listed above");
            own.target = self.ring.successor(s, self.config.me);
            own.base_bytes = Vec::new();
            own.base_seq = 0;
            own.shipped.clear();
            if own.target.is_some() {
                self.ship_delta(s);
            }
        }
    }

    // ---- plumbing ---------------------------------------------------

    fn next_seq(&mut self, target: u32) -> u64 {
        self.sent[target as usize] += 1;
        self.sent[target as usize]
    }

    fn track(&mut self, conn: ConnId, target: u32) -> u64 {
        self.next_token += 1;
        self.pending.insert(self.next_token, (conn, target));
        self.next_token
    }

    fn reply(&mut self, conn: ConnId, text: &str) {
        self.outputs.push(Output::Client(conn, text.to_owned()));
    }

    fn push_peer(&mut self, peer: u32, msg: ClusterMsg) {
        self.outputs.push(Output::Peer(peer, msg));
    }

    /// A human-readable routing summary (used by tests and the CLI's
    /// startup banner).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "node {}/{}: {} owned, {} replicated, {} live",
            self.config.me,
            self.config.nodes,
            self.owned.len(),
            self.replicas.len(),
            self.ring.live_count()
        );
        s
    }
}

/// `true` for lines the owner must mirror to the replica: everything
/// that can mutate detector state. The session command set (`close`,
/// `poll`, `races`, `stats`, `timestamp`, `checkpoint`) reads or
/// manages the session instead; `poll`'s cursor is deliberately not
/// replicated — after a failover, races already delivered may be
/// delivered again (at-least-once), but reports stay byte-identical.
fn is_payload(line: &str) -> bool {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return false;
    }
    let head = line.split_whitespace().next().unwrap_or("");
    !matches!(
        head,
        "close" | "poll" | "races" | "stats" | "timestamp" | "checkpoint"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, me: u32) -> ClusterConfig {
        ClusterConfig {
            nodes,
            me,
            delta_every: 2,
            auth: None,
            telemetry: true,
        }
    }

    fn drain_client(core: &mut NodeCore) -> String {
        core.drain()
            .into_iter()
            .filter_map(|o| match o {
                Output::Client(_, text) => Some(text),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn payload_classification_matches_the_session_command_set() {
        for cmd in [
            "close",
            "poll",
            "races",
            "stats",
            "timestamp t0",
            "checkpoint /tmp/x",
        ] {
            assert!(!is_payload(cmd), "{cmd} is a command");
        }
        for ev in [
            "t0 fork t1",
            "event t0 acq l",
            "main read x",
            "",
            "# comment",
        ] {
            assert_eq!(is_payload(ev), !ev.is_empty() && !ev.starts_with('#'));
        }
    }

    #[test]
    fn single_node_cluster_serves_sessions_without_peers() {
        let mut core = NodeCore::new(config(1, 0));
        core.client_line(7, "open hb tc");
        let out = drain_client(&mut core);
        assert!(out.starts_with("ok session"), "got {out:?}");
        core.client_line(7, "t0 fork t1");
        core.client_line(7, "races");
        let out = drain_client(&mut core);
        assert!(out.contains("ok 0 0"), "got {out:?}");
        // No peer messages in a 1-node cluster.
        core.client_line(7, "t1 r x");
        assert!(core.drain().iter().all(|o| matches!(o, Output::Client(..))));
    }

    #[test]
    fn unbound_lines_and_unknown_sessions_err() {
        let mut core = NodeCore::new(config(1, 0));
        core.client_line(1, "poll");
        assert!(drain_client(&mut core).starts_with("err no session bound"));
        core.client_line(1, "use 999999");
        let out = drain_client(&mut core);
        // 999999 may or may not place on node 0 in a 1-node ring — it
        // always does — so this must be the unknown-session error.
        assert!(out.starts_with("err unknown session"), "got {out:?}");
    }

    #[test]
    fn owner_replicates_payloads_and_ships_deltas() {
        // Find an id node 0 owns in a 2-node ring by opening until the
        // reply is local (the allocator stamps ids mod nodes, so half
        // of node 0's allocations are remote).
        let mut core = NodeCore::new(config(2, 0));
        let mut local = None;
        for conn in 0..16 {
            core.client_line(conn, "open hb tc");
            let out = drain_client(&mut core);
            if out.starts_with("ok session") {
                let id: u64 = out.split_whitespace().nth(2).unwrap().parse().unwrap();
                local = Some((conn, id));
                break;
            }
            // Remote opens queue a forward instead of a reply.
        }
        let (conn, id) = local.expect("some allocation lands locally");
        assert!(core.owns(id));
        core.drain();
        core.client_line(conn, "t0 fork t1");
        core.client_line(conn, "t1 r x");
        let peer_msgs: Vec<ClusterMsg> = core
            .drain()
            .into_iter()
            .filter_map(|o| match o {
                Output::Peer(_, m) => Some(m),
                _ => None,
            })
            .collect();
        // Two payloads and (delta_every = 2) one checkpoint delta.
        let texts = peer_msgs
            .iter()
            .filter(|m| matches!(m, ClusterMsg::ReplText { .. }))
            .count();
        let deltas = peer_msgs
            .iter()
            .filter(|m| matches!(m, ClusterMsg::Delta { .. }))
            .count();
        assert_eq!(texts, 2, "both event lines replicate");
        assert_eq!(deltas, 1, "cadence delta after the second payload");
    }

    #[test]
    fn zombie_peers_get_evicted_and_fence_themselves() {
        // Survivor side: traffic from an already-evicted node draws a
        // repeat eviction notice instead of resurrecting state.
        let mut survivor = NodeCore::new(config(3, 1));
        survivor.fail_node(0);
        survivor.drain();
        survivor.peer_msg(ClusterMsg::Heartbeat { node: 0 });
        let outs = survivor.drain();
        assert!(
            outs.iter()
                .any(|o| matches!(o, Output::Peer(0, ClusterMsg::Evicted { node: 0 }))),
            "got {outs:?}"
        );
        // Zombie side: someone else's eviction is none of our
        // business, our own is a death sentence.
        let mut zombie = NodeCore::new(config(3, 0));
        zombie.peer_msg(ClusterMsg::Evicted { node: 2 });
        assert!(!zombie
            .drain()
            .iter()
            .any(|o| matches!(o, Output::Shutdown)));
        zombie.peer_msg(ClusterMsg::Evicted { node: 0 });
        assert!(zombie.drain().iter().any(|o| matches!(o, Output::Shutdown)));
        assert_eq!(
            zombie.registry().counter_value("tc_cluster_fenced_total"),
            1
        );
    }

    #[test]
    fn failover_fails_pending_forwards_instead_of_hanging() {
        let mut core = NodeCore::new(config(2, 0));
        // Find a conn whose open forwarded to node 1, leaving a reply
        // pending there.
        let mut forwarded = None;
        for conn in 0..16 {
            core.client_line(conn, "open hb tc");
            let remote = core
                .drain()
                .iter()
                .any(|o| matches!(o, Output::Peer(1, ClusterMsg::ForwardLine { .. })));
            if remote {
                forwarded = Some(conn);
                break;
            }
        }
        let conn = forwarded.expect("some open forwards to node 1");
        core.fail_node(1);
        let texts: String = core
            .drain()
            .into_iter()
            .filter_map(|o| match o {
                Output::Client(c, t) if c == conn => Some(t),
                _ => None,
            })
            .collect();
        assert!(
            texts.contains("err failover in progress; retry"),
            "got {texts:?}"
        );
    }

    #[test]
    fn a_session_lost_before_its_first_checkpoint_errs_explicitly() {
        let mut core = NodeCore::new(config(2, 0));
        let id = (0..64)
            .find(|&id| core.place(id) == 1)
            .expect("node 1 owns some id");
        // The owner died after replicating one payload but before any
        // checkpoint base (not even the open snapshot) arrived.
        core.peer_msg(ClusterMsg::ReplText {
            origin: 1,
            seq: 1,
            session: id,
            frame_seq: 1,
            text: "t0 w x".into(),
        });
        core.drain();
        core.fail_node(1);
        core.drain();
        assert_eq!(
            core.registry()
                .counter_value("tc_cluster_promotions_failed_total"),
            1
        );
        core.client_line(9, &format!("use {id}"));
        let out = drain_client(&mut core);
        assert!(
            out.contains(&format!("session {id} lost in failover")),
            "got {out:?}"
        );
    }

    #[test]
    fn auth_gates_admin_commands() {
        let mut core = NodeCore::new(ClusterConfig {
            auth: Some("sekret".to_owned()),
            ..config(1, 0)
        });
        core.client_line(3, "ring");
        assert!(drain_client(&mut core).starts_with("err auth required for ring"));
        core.client_line(3, "shutdown");
        assert!(drain_client(&mut core).starts_with("err auth required for shutdown"));
        core.client_line(3, "auth wrong");
        assert!(drain_client(&mut core).starts_with("err bad auth token"));
        assert_eq!(
            core.registry()
                .counter_value("tc_wire_errors_total{kind=\"auth\"}"),
            3
        );
        core.client_line(3, "auth sekret");
        assert!(drain_client(&mut core).starts_with("ok authed"));
        core.client_line(3, "ring");
        let out = drain_client(&mut core);
        assert!(
            out.starts_with("ok ring nodes=1 live=0 me=0"),
            "got {out:?}"
        );
    }
}
