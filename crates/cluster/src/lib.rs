//! Multi-node race-detection serving — `tcr serve --cluster`.
//!
//! A cluster is a **static peer set** of N nodes, each running the
//! same streaming race-detection service, joined by four mechanisms:
//!
//! - **Consistent-hash routing** ([`ring`]): session ids hash onto a
//!   vnode ring; any node accepts any client and transparently
//!   forwards traffic to the owner, preserving per-session FIFO
//!   order over persistent peer links.
//! - **Checkpoint-delta replication** ([`delta`], [`node`]): the
//!   owner mirrors every payload to its ring successor and
//!   periodically ships its deterministic TCCP checkpoint as a byte
//!   delta against the newest acknowledged base.
//! - **Matrix-clock stability** ([`matrix`]): gossiped apply-
//!   watermarks yield a cluster-wide stable prefix that gates delta
//!   truncation — the distributed analogue of the paper's
//!   monotonicity-based garbage collection.
//! - **Heartbeat failover** ([`node`], [`server`]): a missed
//!   heartbeat removes the node from the ring, which lands each of
//!   its keys exactly on the node already holding the replica; the
//!   replica resumes from its newest checkpoint, replays the
//!   in-flight tail, and race reports come out **identical** to an
//!   uninterrupted run.
//!
//! The deterministic heart of all of this is [`NodeCore`], which is
//! pure state-machine — no sockets, no threads, no clock. The
//! [`testing::LocalCluster`] harness wires N cores together with an
//! in-process message pump (used by the conformance suite's
//! `cluster` check), and [`server::ClusterServer`] gives each core a
//! TCP port, peer links, and a heartbeat ticker for real
//! deployments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delta;
pub mod matrix;
pub mod metrics;
pub mod node;
pub mod ring;
pub mod server;
pub mod testing;

pub use delta::ByteDelta;
pub use matrix::MatrixClock;
pub use metrics::ClusterMetrics;
pub use node::{ConnId, NodeCore, Output};
pub use ring::HashRing;
pub use server::ClusterServer;
pub use testing::LocalCluster;

/// Configuration for one cluster node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Size of the static peer set.
    pub nodes: usize,
    /// This node's index in it (`0..nodes`).
    pub me: u32,
    /// Ship a checkpoint delta to the replica every this many
    /// payloads (events replicate on every payload regardless; the
    /// cadence only bounds replay length and delta size).
    pub delta_every: u64,
    /// Shared-secret token gating `shutdown` and the cluster admin
    /// commands (`ring`, `handoff`); compared in constant time. When
    /// set, inter-node links must prove the same token in their
    /// `Hello`, so the peer plane (`0xF8` messages) is closed to
    /// unauthenticated clients on the shared port. Every node of a
    /// cluster must be configured with the same token.
    pub auth: Option<String>,
    /// Whether to record `tc_cluster_*` metrics (a null registry
    /// otherwise).
    pub telemetry: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: 1,
            me: 0,
            delta_every: 8,
            auth: None,
            telemetry: true,
        }
    }
}
