//! Runners for the paper's Tables 1, 2 and 3.

use tc_orders::{PartialOrderKind, RunMetrics};
use tc_trace::stats::StatsAggregate;
use tc_trace::TraceStats;

use crate::render::{count, fnum, TextTable};
use crate::runner::{ClockKind, Comparison, Mode};
use crate::suite::{suite, Scale};

/// Per-trace results of the full suite sweep: statistics plus one
/// TC/VC comparison for every (partial order, mode) configuration, and
/// the exact (untimed) work metrics per partial order.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// The suite entry's name.
    pub name: &'static str,
    /// Statistics of the generated trace.
    pub stats: TraceStats,
    /// Measurements keyed by configuration.
    pub results: Vec<(PartialOrderKind, Mode, Comparison)>,
    /// Exact work counters per partial order: `(order, tree, vector)`.
    pub work: Vec<(PartialOrderKind, RunMetrics, RunMetrics)>,
}

impl SuiteResult {
    /// The comparison for one configuration.
    pub fn get(&self, order: PartialOrderKind, mode: Mode) -> &Comparison {
        self.results
            .iter()
            .find(|(o, m, _)| *o == order && *m == mode)
            .map(|(_, _, c)| c)
            .expect("all configurations are measured")
    }

    /// The exact work metrics for one partial order, `(tree, vector)`.
    pub fn work_of(&self, order: PartialOrderKind) -> (&RunMetrics, &RunMetrics) {
        self.work
            .iter()
            .find(|(o, _, _)| *o == order)
            .map(|(_, t, v)| (t, v))
            .expect("all orders have work metrics")
    }
}

/// Runs the whole suite at `scale`, measuring every configuration.
/// This is the data source for Table 2 and Figures 6–9. `progress` is
/// invoked with each trace's name as it starts (for console feedback).
pub fn run_suite(scale: Scale, mut progress: impl FnMut(&str)) -> Vec<SuiteResult> {
    let mut out = Vec::new();
    for entry in suite() {
        progress(entry.name);
        let trace = entry.generate(scale);
        let stats = trace.stats();
        let mut results = Vec::with_capacity(6);
        let mut work = Vec::with_capacity(3);
        for order in PartialOrderKind::ALL {
            for mode in [Mode::Po, Mode::PoAnalysis] {
                results.push((order, mode, Comparison::measure(&trace, order, mode)));
            }
            work.push((
                order,
                crate::runner::work_metrics(&trace, order, ClockKind::Tree),
                crate::runner::work_metrics(&trace, order, ClockKind::Vector),
            ));
        }
        out.push(SuiteResult {
            name: entry.name,
            stats,
            results,
            work,
        });
    }
    out
}

/// **Table 1**: aggregate statistics of the benchmark suite (min / max
/// / mean of threads, locks, variables, events and the sync / r-w event
/// percentages).
pub fn table1(stats: &[TraceStats]) -> TextTable {
    let agg = |f: &dyn Fn(&TraceStats) -> f64| StatsAggregate::of(stats.iter().map(f));
    let mut t = TextTable::new(["Statistic", "Min", "Max", "Mean"])
        .with_title("Table 1: trace statistics of the synthetic suite");
    let rows: [(&str, StatsAggregate, bool); 6] = [
        ("Threads", agg(&|s| s.threads as f64), true),
        ("Locks", agg(&|s| s.locks as f64), true),
        ("Variables", agg(&|s| s.vars as f64), true),
        ("Events", agg(&|s| s.events as f64), true),
        ("Sync. Events (%)", agg(&|s| s.sync_pct()), false),
        ("R/W Events (%)", agg(&|s| s.rw_pct()), false),
    ];
    for (name, a, is_count) in rows {
        if is_count {
            t.row([
                name.to_owned(),
                count(a.min as u64),
                count(a.max as u64),
                count(a.mean as u64),
            ]);
        } else {
            t.row([name.to_owned(), fnum(a.min), fnum(a.max), fnum(a.mean)]);
        }
    }
    t
}

/// **Table 2**: average TC-over-VC speedup per partial order, for the
/// PO computation alone and with the analysis on top.
pub fn table2(results: &[SuiteResult]) -> TextTable {
    let mut t = TextTable::new(["", "MAZ", "SHB", "HB"])
        .with_title("Table 2: average speedup (VC time / TC time) due to tree clocks");
    for mode in [Mode::Po, Mode::PoAnalysis] {
        let mut cells = vec![mode.to_string()];
        for order in PartialOrderKind::ALL {
            let mean = results
                .iter()
                .map(|r| r.get(order, mode).speedup())
                .sum::<f64>()
                / results.len().max(1) as f64;
            cells.push(fnum(mean));
        }
        t.row(cells);
    }
    t
}

/// **Table 3**: per-benchmark trace information (`N`, `T`, `M`, `L`,
/// plus the sync-event percentage).
pub fn table3(stats: &[(&'static str, TraceStats)]) -> TextTable {
    let mut t = TextTable::new(["Benchmark", "N", "T", "M", "L", "Sync%"])
        .with_title("Table 3: information on the synthetic benchmark traces");
    for (name, s) in stats {
        t.row([
            (*name).to_owned(),
            count(s.events as u64),
            s.threads.to_string(),
            count(s.vars as u64),
            count(s.locks as u64),
            fnum(s.sync_pct()),
        ]);
    }
    t
}

/// Generates the per-trace statistics for Table 1/Table 3 without any
/// timing (cheap; used by the `paper` binary for stats-only runs).
pub fn suite_stats(scale: Scale) -> Vec<(&'static str, TraceStats)> {
    suite()
        .iter()
        .map(|e| (e.name, e.generate(scale).stats()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_aggregates_suite_stats() {
        let stats: Vec<TraceStats> = suite_stats(Scale::Quick)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let t = table1(&stats);
        assert_eq!(t.len(), 6);
        let text = t.to_string();
        assert!(text.contains("Threads"));
        assert!(text.contains("Sync. Events (%)"));
    }

    #[test]
    fn table3_lists_every_trace() {
        let stats = suite_stats(Scale::Quick);
        let t = table3(&stats);
        assert_eq!(t.len(), 39);
        assert!(t.to_csv().contains("star-224"));
    }

    #[test]
    fn table2_shape_from_tiny_run() {
        // Use a single tiny entry to keep the test fast.
        let entry = &suite()[10]; // a java-style workload
        let trace = entry.generate(Scale::Quick);
        let mut results = Vec::new();
        for order in PartialOrderKind::ALL {
            for mode in [Mode::Po, Mode::PoAnalysis] {
                results.push((order, mode, Comparison::measure(&trace, order, mode)));
            }
        }
        let work = PartialOrderKind::ALL
            .iter()
            .map(|&o| {
                (
                    o,
                    crate::runner::work_metrics(&trace, o, ClockKind::Tree),
                    crate::runner::work_metrics(&trace, o, ClockKind::Vector),
                )
            })
            .collect();
        let r = SuiteResult {
            name: entry.name,
            stats: trace.stats(),
            results,
            work,
        };
        let t = table2(std::slice::from_ref(&r));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with(",MAZ,SHB,HB"));
    }
}
