//! `paper` — regenerate every table and figure of the tree-clock paper.
//!
//! ```text
//! USAGE: paper [SUBCOMMAND] [--quick|--full] [--out DIR]
//! ```
//!
//! See `paper --help` (or [`USAGE`]) for the subcommand list.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use tc_bench::figures;
use tc_bench::render::TextTable;
use tc_bench::suite::Scale;
use tc_bench::tables::{self, SuiteResult};

struct Args {
    command: String,
    scale: Scale,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut scale = Scale::Default;
    let mut out = PathBuf::from("results");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out requires a directory")?);
            }
            "--help" | "-h" => return Err("help".to_owned()),
            cmd if !cmd.starts_with('-') && command.is_none() => {
                command = Some(cmd.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        command: command.unwrap_or_else(|| "all".to_owned()),
        scale,
        out,
    })
}

fn emit(table: &TextTable, out: &std::path::Path, file: &str) {
    println!("{table}");
    let path = out.join(file);
    match table.write_csv(&path) {
        Ok(()) => println!("[csv written to {}]\n", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}\n", path.display()),
    }
}

fn progress(label: &str) {
    eprint!("\r  measuring {label:<40}");
    let _ = std::io::stderr().flush();
}

fn progress_done() {
    eprintln!("\r{:<52}", "");
}

/// Runs the suite sweep once; reused by table2 and figures 6-9.
fn suite_results(scale: Scale) -> Vec<SuiteResult> {
    eprintln!("running the benchmark suite (39 traces × 3 orders × 2 modes × 2 clocks)...");
    let results = tables::run_suite(scale, progress);
    progress_done();
    results
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprint!("{USAGE}");
            return if e == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    let out = &args.out;
    let scale = args.scale;

    match args.command.as_str() {
        "table1" => {
            let stats: Vec<_> = tables::suite_stats(scale)
                .into_iter()
                .map(|(_, s)| s)
                .collect();
            emit(&tables::table1(&stats), out, "table1.csv");
        }
        "table3" => {
            let stats = tables::suite_stats(scale);
            emit(&tables::table3(&stats), out, "table3.csv");
        }
        "table2" | "fig6" | "fig7" | "fig8" | "fig9" => {
            let results = suite_results(scale);
            match args.command.as_str() {
                "table2" => emit(&tables::table2(&results), out, "table2.csv"),
                "fig6" => emit(&figures::fig6(&results), out, "fig6.csv"),
                "fig7" => emit(&figures::fig7(&results, 0.01), out, "fig7.csv"),
                "fig8" => emit(&figures::fig8(&results), out, "fig8.csv"),
                "fig9" => emit(&figures::fig9(&results), out, "fig9.csv"),
                _ => unreachable!(),
            }
        }
        "fig10" => {
            eprintln!("running the figure-10 scalability sweep...");
            let t = figures::fig10(scale, progress);
            progress_done();
            emit(&t, out, "fig10.csv");
        }
        "ablation" => {
            emit(&figures::ablation(scale), out, "ablation.csv");
        }
        "all" => {
            let stats = tables::suite_stats(scale);
            let flat: Vec<_> = stats.iter().map(|(_, s)| *s).collect();
            emit(&tables::table1(&flat), out, "table1.csv");
            emit(&tables::table3(&stats), out, "table3.csv");
            let results = suite_results(scale);
            emit(&tables::table2(&results), out, "table2.csv");
            emit(&figures::fig6(&results), out, "fig6.csv");
            emit(&figures::fig7(&results, 0.01), out, "fig7.csv");
            emit(&figures::fig8(&results), out, "fig8.csv");
            emit(&figures::fig9(&results), out, "fig9.csv");
            eprintln!("running the figure-10 scalability sweep...");
            let t = figures::fig10(scale, progress);
            progress_done();
            emit(&t, out, "fig10.csv");
            emit(&figures::ablation(scale), out, "ablation.csv");
        }
        other => {
            eprintln!("error: unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "\
USAGE: paper [SUBCOMMAND] [--quick|--full] [--out DIR]

SUBCOMMANDS
  all       run everything (default)
  table1    aggregate trace statistics
  table2    average TC-vs-VC speedups
  table3    per-benchmark trace information
  fig6      per-trace times scatter data
  fig7      HB+Analysis speedup vs sync%
  fig8      work ratios vs the VTWork lower bound
  fig9      VCWork/TCWork histogram
  fig10     scalability scenarios sweep
  ablation  TC-examined vs VTWork vs VC-examined (extension)

OPTIONS
  --quick   ~40k-event traces (fast smoke run)
  --full    ~1M-event traces (closest to the paper)
  --out DIR directory for CSV output (default: results)
";
