//! The benchmark harness reproducing **every table and figure** of the
//! tree-clock paper's evaluation (Section 6).
//!
//! | Paper artifact | Runner | Output |
//! |---|---|---|
//! | Table 1 (trace statistics, aggregate) | [`tables::table1`] | text + CSV |
//! | Table 2 (average speedups) | [`tables::table2`] | text + CSV |
//! | Table 3 (per-benchmark trace info) | [`tables::table3`] | text + CSV |
//! | Figure 6 (TC vs VC scatter, 6 panels) | [`figures::fig6`] | CSV series |
//! | Figure 7 (speedup vs sync%) | [`figures::fig7`] | CSV series |
//! | Figure 8 (work ratios vs VTWork) | [`figures::fig8`] | CSV series |
//! | Figure 9 (VCWork/TCWork histograms) | [`figures::fig9`] | text + CSV |
//! | Figure 10 (scalability, 4 scenarios) | [`figures::fig10`] | CSV series |
//!
//! The paper's 153 logged benchmark traces are simulated by the seeded
//! synthetic [`suite`](mod@suite) (see DESIGN.md for the substitution rationale);
//! the Figure 10 scenarios are generated exactly as described in the
//! paper. Run everything via the `paper` binary:
//!
//! ```text
//! cargo run -p tc-bench --release --bin paper -- all
//! cargo run -p tc-bench --release --bin paper -- table2 --quick
//! cargo run -p tc-bench --release --bin paper -- fig10 --out results/
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod cluster;
pub mod figures;
pub mod ingest;
pub mod json;
pub mod parallel;
pub mod render;
pub mod runner;
pub mod suite;
pub mod tables;
pub mod telemetry;

pub use baseline::{BaselineRecord, BaselineSummary, BenchDoc, ChurnRecord};
pub use cluster::ClusterRecord;
pub use ingest::{IngestRecord, IngestScale};
pub use parallel::{ParallelRecord, ParallelScale};
pub use runner::{ClockKind, Measurement, Mode};
pub use suite::{suite, Scale, SuiteEntry};
pub use telemetry::{PhaseBreakdownRecord, TelemetryOverheadRecord};
