//! Ingest throughput: events/sec through the live `tcr serve` socket
//! path, measured end to end over real loopback connections.
//!
//! Two protocols × two fan-in shapes, the four first-class records of
//! the baseline document:
//!
//! - **text / 1 session** — the line protocol, one connection, the
//!   whole workload pipelined and synchronized with a trailing `stats`;
//! - **binary / 1 session** — the same workload as length-prefixed
//!   event frames ([`tc_trace::wire`]), batched [`FRAME_EVENTS`] events
//!   per frame;
//! - **text / 1000 sessions** — one connection *per session* (text
//!   lines bind to the connection's current session), all pipelined,
//!   then each synchronized;
//! - **binary / 1000 sessions** — one connection fanning into 1000
//!   sessions with *multi-session frames* (one wire message carries a
//!   batch for every session, amortizing the header + queue hop
//!   1000-fold), synchronized with a single `stats-all` round trip
//!   that folds in behind every session's pending work.
//!
//! The timed region covers event delivery *and* the final
//! synchronization, so a record's `events_per_sec` is the sustained
//! rate a client actually observes, not a fire-and-forget number.
//! Session setup (opens, connections) is excluded. Each cell is a
//! single pass — the workloads are large enough that per-pass noise is
//! well under the text-vs-binary margins the baseline tracks.

use std::net::SocketAddr;
use std::time::Instant;

use tc_stream::{Client, ServeConfig, Server};
use tc_trace::gen::WorkloadSpec;
use tc_trace::{text_format, wire, Trace};

/// Events per binary frame — inside the 256–1024 sweet spot where the
/// per-frame overhead (sniff, header, queue hop) is amortized but a
/// frame still fits comfortably in socket buffers.
pub const FRAME_EVENTS: usize = 512;

/// One measured ingest cell.
#[derive(Clone, Debug)]
pub struct IngestRecord {
    /// `"text"` or `"binary"`.
    pub mode: &'static str,
    /// Concurrent sessions the events fanned into.
    pub sessions: usize,
    /// Total events delivered across all sessions.
    pub events: u64,
    /// Wall-clock seconds from first byte to last synchronized session.
    pub seconds: f64,
}

impl IngestRecord {
    /// The headline rate.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.seconds.max(1e-9)
    }
}

/// Workload sizes for one ingest collection.
#[derive(Clone, Copy, Debug)]
pub struct IngestScale {
    /// Events of the single-session workload.
    pub single_events: usize,
    /// Sessions in the fan-in cells.
    pub fanin_sessions: usize,
    /// Events *per session* in the fan-in cells.
    pub fanin_events_each: usize,
}

impl IngestScale {
    /// The CI scale.
    pub fn quick() -> Self {
        IngestScale {
            single_events: 30_000,
            fanin_sessions: 1_000,
            fanin_events_each: 30,
        }
    }

    /// The default scale for committed baselines.
    pub fn default_scale() -> Self {
        IngestScale {
            single_events: 120_000,
            fanin_sessions: 1_000,
            fanin_events_each: 120,
        }
    }
}

/// A service-shaped workload: enough threads and variables that the
/// detector does real work, racy enough that races actually flow.
fn workload(events: usize, seed: u64) -> Trace {
    WorkloadSpec {
        threads: 8,
        locks: 4,
        vars: 64,
        events,
        sync_ratio: 0.1,
        shared_fraction: 0.5,
        seed,
        ..WorkloadSpec::default()
    }
    .generate()
}

/// Runs all four ingest cells against a private in-process server.
/// `progress` is called before each cell.
pub fn collect(scale: IngestScale, mut progress: impl FnMut(&str)) -> Vec<IngestRecord> {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        // Ingest cells measure the wire/dispatch path; intra-session
        // parallelism is benched separately (the `parallel` records).
        parallel: 0,
        telemetry: true,
        auth: None,
    })
    .expect("ingest bench server binds a free loopback port");
    let addr = server.local_addr();

    progress("ingest/text/1");
    let mut records = vec![single_session(addr, scale.single_events, false)];
    progress("ingest/binary/1");
    records.push(single_session(addr, scale.single_events, true));
    progress(&format!("ingest/text/{}", scale.fanin_sessions));
    records.push(fanin_text(addr, scale));
    progress(&format!("ingest/binary/{}", scale.fanin_sessions));
    records.push(fanin_binary(addr, scale));

    server.shutdown();
    server.join();
    records
}

/// Asserts the synchronizing `stats` reply accounts for every event —
/// a throughput number for events that silently vanished would be
/// worse than no number.
fn assert_synced(line: &str, events: usize, cell: &str) {
    assert!(
        line.contains(&format!("events={events}")) && line.contains("rejected=0"),
        "{cell}: expected events={events} rejected=0 in `{line}`"
    );
}

pub(crate) fn single_session(addr: SocketAddr, events: usize, binary: bool) -> IngestRecord {
    let trace = workload(events, 0x1261);
    let mut client = Client::open(addr, "hb tc").expect("ingest bench session opens");
    // Pre-render outside the timed region: the cell measures the
    // service's ingest rate, not the client's formatter. (Frames need
    // the server-assigned session id, hence after the open.)
    let payload = if binary {
        let id = client.session();
        let mut blob = Vec::new();
        for chunk in trace.events().chunks(FRAME_EVENTS) {
            blob.extend_from_slice(&wire::encode_frame(id, chunk).expect("bench frames fit"));
        }
        blob
    } else {
        text_format::to_text(&trace).into_bytes()
    };

    let mode = if binary { "binary" } else { "text" };
    let start = Instant::now();
    client.send_raw(&payload).expect("ingest payload writes");
    let stats = client.request("stats").expect("ingest stats syncs");
    let seconds = start.elapsed().as_secs_f64();
    assert_synced(
        stats.last().expect("stats terminator"),
        trace.len(),
        &format!("{mode}/1"),
    );
    client.request("close").expect("ingest session closes");
    IngestRecord {
        mode,
        sessions: 1,
        events: trace.len() as u64,
        seconds,
    }
}

/// Text fan-in: one connection per session (bare text lines bind to
/// the connection's current session), every payload pipelined before
/// any reply is read.
fn fanin_text(addr: SocketAddr, scale: IngestScale) -> IngestRecord {
    let trace = workload(scale.fanin_events_each, 0x1262);
    let mut payload = text_format::to_text(&trace);
    payload.push_str("stats\n");
    let mut clients: Vec<Client> = (0..scale.fanin_sessions)
        .map(|_| Client::open(addr, "hb tc").expect("fan-in session opens"))
        .collect();

    let start = Instant::now();
    for client in &mut clients {
        client.send_raw(payload.as_bytes()).expect("fan-in payload");
        client.flush().expect("fan-in flush");
    }
    for client in &mut clients {
        loop {
            let line = client.read_reply().expect("fan-in stats reply");
            if line.starts_with("ok") {
                assert_synced(&line, trace.len(), "text/fan-in");
                break;
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    IngestRecord {
        mode: "text",
        sessions: scale.fanin_sessions,
        events: (scale.fanin_sessions * trace.len()) as u64,
        seconds,
    }
}

/// Binary fan-in: one connection, `fanin_sessions` sessions, one
/// *multi-session* frame per chunk round (a single wire message
/// carrying that chunk for every session), then one `stats-all` round
/// trip as the synchronization point — the aggregate reply folds in
/// behind each session's pending work, so it is exactly the barrier
/// the per-session `use`/`stats` tail used to be, minus the 1000
/// reply round trips.
fn fanin_binary(addr: SocketAddr, scale: IngestScale) -> IngestRecord {
    let trace = workload(scale.fanin_events_each, 0x1263);
    let mut client = Client::open(addr, "hb tc").expect("fan-in connection opens");
    let mut ids = vec![client.session()];
    for _ in 1..scale.fanin_sessions {
        ids.push(client.open_session("hb tc").expect("fan-in session opens"));
    }

    // Pre-encode the full stream: one multi-frame per chunk round.
    let mut blob = Vec::new();
    for chunk in trace.events().chunks(FRAME_EVENTS) {
        let groups: Vec<(u64, &[tc_trace::Event])> = ids.iter().map(|&id| (id, chunk)).collect();
        blob.extend_from_slice(&wire::encode_multi_frame(&groups).expect("bench frames fit"));
    }

    let start = Instant::now();
    client.send_raw(&blob).expect("fan-in frames write");
    let (sessions, events, rejected, _races) = client.stats_all().expect("fan-in stats-all syncs");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        (sessions, rejected),
        (ids.len() as u64, 0),
        "binary/fan-in: aggregate must cover every session cleanly"
    );
    assert_eq!(
        events,
        (ids.len() * trace.len()) as u64,
        "binary/fan-in: aggregate must account for every event"
    );
    IngestRecord {
        mode: "binary",
        sessions: scale.fanin_sessions,
        events: (scale.fanin_sessions * trace.len()) as u64,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ingest_cells_measure_and_account_for_every_event() {
        let scale = IngestScale {
            single_events: 2_000,
            fanin_sessions: 8,
            fanin_events_each: 50,
        };
        let records = collect(scale, |_| {});
        assert_eq!(records.len(), 4);
        for r in &records {
            assert!(r.seconds > 0.0, "{r:?}");
            assert!(r.events > 0, "{r:?}");
            assert!(r.events_per_sec() > 0.0, "{r:?}");
        }
        assert_eq!(records[0].sessions, 1);
        assert_eq!(records[2].sessions, 8);
        assert_eq!(records[2].events, 8 * 50);
    }
}
