//! Intra-session parallel detection throughput: the epoch-batched
//! [`ParallelDetector`] against plain
//! sequential [`IncrementalDetector`]
//! feeding, per clock backend, at several worker counts.
//!
//! The workload is deliberately epoch-friendly — independent thread
//! pairs, each racing on its own variable — so every frame splits into
//! `pairs` conflict-free epochs and the cells measure the scheduler's
//! best case (partition + fan-out + barrier join) rather than its
//! fallback. The `workers == 0` row of each backend is the sequential
//! baseline over the *same* frames; `events_per_sec` ratios against it
//! are the speedup the committed baseline tracks. Every parallel cell
//! asserts that (a) each frame actually took the epoch path and (b)
//! the race total matches the sequential run — a throughput number for
//! a silently-degraded or divergent path would be worse than none.

use std::sync::Arc;
use std::time::Instant;

use tc_orders::PartialOrderKind;
use tc_stream::{DetectorConfig, EpochPool, IncrementalDetector, ParallelDetector};
use tc_trace::{Event, Op, ThreadId, VarId};

/// Worker counts of one collection: the sequential baseline plus two
/// pool sizes bracketing typical core budgets.
pub const WORKER_GRID: [usize; 3] = [0, 2, 8];

/// One measured parallel-detection cell.
#[derive(Clone, Debug)]
pub struct ParallelRecord {
    /// Clock backend name (`tree`, `vector` or `hybrid`).
    pub backend: &'static str,
    /// Epoch-pool workers; `0` is the sequential baseline.
    pub workers: usize,
    /// Total events fed.
    pub events: u64,
    /// Wall-clock seconds for the full feed.
    pub seconds: f64,
}

impl ParallelRecord {
    /// The headline rate.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.seconds.max(1e-9)
    }
}

/// Workload sizes for one parallel collection.
#[derive(Clone, Copy, Debug)]
pub struct ParallelScale {
    /// Independent thread pairs (= epochs per frame).
    pub pairs: usize,
    /// Frames fed per cell.
    pub frames: usize,
    /// Events per frame.
    pub frame_events: usize,
}

impl ParallelScale {
    /// The CI scale.
    pub fn quick() -> Self {
        ParallelScale {
            pairs: 8,
            frames: 8,
            frame_events: 4_096,
        }
    }

    /// The default scale for committed baselines.
    pub fn default_scale() -> Self {
        ParallelScale {
            pairs: 8,
            frames: 32,
            frame_events: 8_192,
        }
    }
}

/// Generates the epoch-friendly frames: pair `g` is threads `2g` and
/// `2g + 1` alternating writes to variable `g` — no cross-pair edges,
/// so the partitioner splits every frame into exactly `pairs` epochs.
pub(crate) fn epoch_frames(scale: ParallelScale) -> Vec<Vec<Event>> {
    (0..scale.frames)
        .map(|_| {
            (0..scale.frame_events)
                .map(|k| {
                    let g = (k % scale.pairs) as u32;
                    let t = 2 * g + ((k / scale.pairs) % 2) as u32;
                    Event::new(ThreadId::new(t), Op::Write(VarId::new(g)))
                })
                .collect()
        })
        .collect()
}

/// Feeds every frame through one detector configuration and returns
/// (seconds, total races, parallel frames taken).
fn measure<C: tc_core::LogicalClock + Send + 'static>(
    frames: &[Vec<Event>],
    workers: usize,
) -> (f64, u64, u64) {
    let config = DetectorConfig::for_order(PartialOrderKind::Hb);
    if workers == 0 {
        let mut d = IncrementalDetector::<C>::new(config);
        let start = Instant::now();
        for frame in frames {
            for e in frame {
                d.feed(e).expect("bench events are valid");
            }
        }
        (start.elapsed().as_secs_f64(), d.report().total, 0)
    } else {
        let mut d = ParallelDetector::<C>::new(config, Arc::new(EpochPool::new(workers)), 2);
        let start = Instant::now();
        for frame in frames {
            d.feed_frame(frame).expect("bench events are valid");
        }
        (
            start.elapsed().as_secs_f64(),
            d.detector().report().total,
            d.parallel_frames(),
        )
    }
}

fn collect_backend<C: tc_core::LogicalClock + Send + 'static>(
    backend: &'static str,
    frames: &[Vec<Event>],
    records: &mut Vec<ParallelRecord>,
    mut progress: impl FnMut(&str),
) {
    let events = frames.iter().map(Vec::len).sum::<usize>() as u64;
    let mut sequential_races = None;
    for workers in WORKER_GRID {
        progress(&format!("parallel/{backend}/{workers}"));
        let (seconds, races, parallel_frames) = measure::<C>(frames, workers);
        if workers == 0 {
            sequential_races = Some(races);
        } else {
            assert_eq!(
                parallel_frames,
                frames.len() as u64,
                "{backend}/{workers}: every bench frame must take the epoch path"
            );
            assert_eq!(
                Some(races),
                sequential_races,
                "{backend}/{workers}: parallel run diverged from sequential"
            );
        }
        records.push(ParallelRecord {
            backend,
            workers,
            events,
            seconds,
        });
    }
}

/// Runs the parallel grid: three backends × [`WORKER_GRID`].
/// `progress` is called before each cell.
pub fn collect(scale: ParallelScale, mut progress: impl FnMut(&str)) -> Vec<ParallelRecord> {
    let frames = epoch_frames(scale);
    let mut records = Vec::new();
    collect_backend::<tc_core::TreeClock>("tree", &frames, &mut records, &mut progress);
    collect_backend::<tc_core::VectorClock>("vector", &frames, &mut records, &mut progress);
    collect_backend::<tc_core::HybridClock>("hybrid", &frames, &mut records, &mut progress);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_parallel_cells_measure_all_backends_and_worker_counts() {
        let scale = ParallelScale {
            pairs: 4,
            frames: 3,
            frame_events: 256,
        };
        let records = collect(scale, |_| {});
        assert_eq!(records.len(), 3 * WORKER_GRID.len());
        for r in &records {
            assert_eq!(r.events, 3 * 256);
            assert!(r.seconds > 0.0, "{r:?}");
            assert!(r.events_per_sec() > 0.0, "{r:?}");
        }
        // Each backend carries the full worker grid, baseline included.
        for backend in ["tree", "vector", "hybrid"] {
            let workers: Vec<usize> = records
                .iter()
                .filter(|r| r.backend == backend)
                .map(|r| r.workers)
                .collect();
            assert_eq!(workers, WORKER_GRID.to_vec(), "{backend}");
        }
    }
}
