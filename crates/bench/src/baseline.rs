//! The `tcr bench --json` perf baseline: a schema-stable snapshot of
//! hot-path cost, recorded per PR as `BENCH_<pr>.json`.
//!
//! Every record is one *(scenario × threads) × partial order × clock
//! backend* cell with the numbers that matter for the trajectory:
//!
//! - `seconds` — mean wall time over [`REPETITIONS`] pooled runs,
//!   after one untimed warm-up repetition that grows the clock buffers
//!   (the timed runs are allocation-free, so the mean reflects steady
//!   state);
//! - `joins` / `copies` / `deep_copies` — operation counts;
//! - `vt_work` / `ds_work` — the paper's Section 4 work metrics;
//! - `peak_clock_bytes` — heap owned by the engine's clocks after the
//!   run (clocks only grow, so this is the run's peak).
//!
//! The scenario set is the paper's Figure 10 quartet (single-lock,
//! skewed-locks, star, pairwise), where the TC-vs-VC comparison is
//! controlled and reproducible. [`validate`] checks a produced document
//! against the schema — CI runs it on every PR and uploads the artifact
//! so the perf trajectory is visible over time.

use tc_core::{ClockPool, LogicalClock, TreeClock, VectorClock};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, RunMetrics, ShbEngine};
use tc_trace::gen::Scenario;
use tc_trace::Trace;

use crate::json::Value;
use crate::runner::{measure_clock, ClockKind, Mode, REPETITIONS};

/// Identifier of the document format (the `schema` field).
pub const SCHEMA: &str = "treeclocks/bench-baseline";

/// Version of the document format (the `version` field). Bump on any
/// breaking change to the record fields.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured cell of the baseline grid.
#[derive(Clone, Debug)]
pub struct BaselineRecord {
    /// Scenario (or trace file) name.
    pub scenario: String,
    /// Thread count of the generated trace.
    pub threads: u32,
    /// Event count of the generated trace.
    pub events: usize,
    /// The partial order computed.
    pub order: PartialOrderKind,
    /// The clock representation used.
    pub backend: ClockKind,
    /// Mean wall-clock seconds over the pooled repetitions.
    pub seconds: f64,
    /// Join operations performed.
    pub joins: u64,
    /// Copy operations performed.
    pub copies: u64,
    /// `CopyCheckMonotone` deep-copy fallbacks.
    pub deep_copies: u64,
    /// The representation-independent work lower bound.
    pub vt_work: u64,
    /// Entries touched by the concrete data structure.
    pub ds_work: u64,
    /// Heap bytes owned by the engine's clocks after the run.
    pub peak_clock_bytes: usize,
}

/// Thread counts of the generated FIG10 grid. High enough that the
/// tree clock's sublinear operations can dominate its pointer-chasing
/// overhead (the paper's Figure 10 sweeps 10–360; the crossover against
/// this repo's vectorized vector clock sits near ~200 threads on
/// sparse-communication scenarios).
pub fn thread_counts(quick: bool) -> &'static [u32] {
    if quick {
        &[360]
    } else {
        &[128, 360]
    }
}

/// Events per generated trace.
pub fn baseline_events(quick: bool) -> usize {
    if quick {
        25_000
    } else {
        100_000
    }
}

/// Runs the baseline grid: FIG10 scenarios × [`thread_counts`] ×
/// HB/SHB/MAZ × tree/vector. `progress` is called before each
/// scenario×threads cell.
pub fn collect(quick: bool, mut progress: impl FnMut(&str)) -> Vec<BaselineRecord> {
    let mut records = Vec::new();
    for scenario in Scenario::FIG10 {
        for &threads in thread_counts(quick) {
            progress(&format!("{scenario}/{threads}"));
            let trace =
                scenario.generate(threads, baseline_events(quick), 0xBE2C + u64::from(threads));
            collect_trace_into(&scenario.to_string(), &trace, &mut records);
        }
    }
    records
}

/// Measures a single (already loaded) trace across every order ×
/// backend — the `tcr bench --trace FILE` path.
pub fn collect_trace(name: &str, trace: &Trace) -> Vec<BaselineRecord> {
    let mut records = Vec::new();
    collect_trace_into(name, trace, &mut records);
    records
}

fn collect_trace_into(name: &str, trace: &Trace, records: &mut Vec<BaselineRecord>) {
    for order in PartialOrderKind::ALL {
        records.push(record_for::<TreeClock>(name, trace, order, ClockKind::Tree));
        records.push(record_for::<VectorClock>(
            name,
            trace,
            order,
            ClockKind::Vector,
        ));
    }
}

fn record_for<C: LogicalClock>(
    name: &str,
    trace: &Trace,
    order: PartialOrderKind,
    backend: ClockKind,
) -> BaselineRecord {
    let mut pool = ClockPool::<C>::new();
    let timed = measure_clock::<C>(trace, order, Mode::Po, &mut pool);
    let (metrics, peak_clock_bytes) = counted_run::<C>(trace, order, &mut pool);
    BaselineRecord {
        scenario: name.to_owned(),
        threads: trace.thread_count() as u32,
        events: trace.len(),
        order,
        backend,
        seconds: timed.seconds,
        joins: metrics.joins,
        copies: metrics.copies,
        deep_copies: metrics.deep_copies,
        vt_work: metrics.vt_work(),
        ds_work: metrics.ds_work(),
        peak_clock_bytes,
    }
}

/// An instrumented run that also reports the engine's final clock
/// footprint (the timed path cannot: `run_pooled` tears the engine
/// down).
fn counted_run<C: LogicalClock>(
    trace: &Trace,
    order: PartialOrderKind,
    pool: &mut ClockPool<C>,
) -> (RunMetrics, usize) {
    match order {
        PartialOrderKind::Hb => {
            let mut e = HbEngine::<C>::with_pool(trace, std::mem::take(pool));
            for ev in trace {
                e.process_counted(ev);
            }
            let result = (*e.metrics(), e.clock_bytes());
            *pool = e.into_pool();
            result
        }
        PartialOrderKind::Shb => {
            let mut e = ShbEngine::<C>::with_pool(trace, std::mem::take(pool));
            for ev in trace {
                e.process_counted(ev);
            }
            let result = (*e.metrics(), e.clock_bytes());
            *pool = e.into_pool();
            result
        }
        PartialOrderKind::Maz => {
            let mut e = MazEngine::<C>::with_pool(trace, std::mem::take(pool));
            for ev in trace {
                e.process_counted(ev);
            }
            let result = (*e.metrics(), e.clock_bytes());
            *pool = e.into_pool();
            result
        }
    }
}

fn backend_name(backend: ClockKind) -> &'static str {
    match backend {
        ClockKind::Tree => "tree",
        ClockKind::Vector => "vector",
    }
}

/// Renders the records as the schema-stable JSON document.
pub fn to_json(records: &[BaselineRecord], quick: bool) -> String {
    let records = records
        .iter()
        .map(|r| {
            Value::obj([
                ("scenario", r.scenario.as_str().into()),
                ("threads", r.threads.into()),
                ("events", r.events.into()),
                ("order", r.order.to_string().into()),
                ("backend", backend_name(r.backend).into()),
                ("seconds", r.seconds.into()),
                ("joins", r.joins.into()),
                ("copies", r.copies.into()),
                ("deep_copies", r.deep_copies.into()),
                ("vt_work", r.vt_work.into()),
                ("ds_work", r.ds_work.into()),
                ("peak_clock_bytes", r.peak_clock_bytes.into()),
            ])
        })
        .collect();
    let doc = Value::obj([
        ("schema", SCHEMA.into()),
        ("version", SCHEMA_VERSION.into()),
        ("mode", if quick { "quick" } else { "default" }.into()),
        ("repetitions", u64::from(REPETITIONS).into()),
        ("records", Value::Arr(records)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

/// Aggregate facts extracted by [`validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineSummary {
    /// Total records in the document.
    pub records: usize,
    /// Distinct scenario × threads × order configurations.
    pub configs: usize,
    /// Configurations where the tree clock's wall time is at most the
    /// vector clock's.
    pub tree_wins: usize,
}

const REQUIRED_NUMS: [&str; 8] = [
    "threads",
    "events",
    "seconds",
    "joins",
    "copies",
    "deep_copies",
    "vt_work",
    "ds_work",
];

/// Parses and schema-checks a baseline document.
///
/// # Errors
///
/// Returns a message naming the first offending field: wrong
/// schema/version, a record missing a field or with a mistyped value,
/// or a configuration missing one of its two backends.
pub fn validate(text: &str) -> Result<BaselineSummary, String> {
    let doc = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("schema is {other:?}, expected {SCHEMA:?}")),
    }
    match doc.get("version").and_then(Value::as_num) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        other => return Err(format!("version is {other:?}, expected {SCHEMA_VERSION}")),
    }
    let records = doc
        .get("records")
        .and_then(Value::as_arr)
        .ok_or("missing `records` array")?;
    if records.is_empty() {
        return Err("`records` is empty".into());
    }

    // (scenario, threads, order) -> (tree seconds, vector seconds)
    type BackendSeconds = (Option<f64>, Option<f64>);
    let mut configs: Vec<(String, BackendSeconds)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let field = |name: &str| {
            r.get(name)
                .ok_or_else(|| format!("record {i}: missing field `{name}`"))
        };
        let scenario = field("scenario")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `scenario` is not a string"))?;
        let order = field("order")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `order` is not a string"))?;
        if !["HB", "SHB", "MAZ"].contains(&order) {
            return Err(format!("record {i}: unknown order `{order}`"));
        }
        let backend = field("backend")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `backend` is not a string"))?;
        if !["tree", "vector"].contains(&backend) {
            return Err(format!("record {i}: unknown backend `{backend}`"));
        }
        for name in REQUIRED_NUMS {
            let v = field(name)?
                .as_num()
                .ok_or_else(|| format!("record {i}: `{name}` is not a number"))?;
            if v < 0.0 {
                return Err(format!("record {i}: `{name}` is negative"));
            }
        }
        // peak_clock_bytes rides along but is representation-specific
        // enough to keep out of the cross-field checks.
        field("peak_clock_bytes")?
            .as_num()
            .ok_or_else(|| format!("record {i}: `peak_clock_bytes` is not a number"))?;

        let threads = field("threads")?.as_num().unwrap_or(0.0);
        let seconds = field("seconds")?.as_num().unwrap_or(0.0);
        let key = format!("{scenario}/{threads}/{order}");
        let entry = match configs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, entry)) => entry,
            None => {
                configs.push((key, (None, None)));
                &mut configs.last_mut().expect("just pushed").1
            }
        };
        match backend {
            "tree" => entry.0 = Some(seconds),
            _ => entry.1 = Some(seconds),
        }
    }

    let mut tree_wins = 0;
    for (key, (tree, vector)) in &configs {
        let (Some(tree), Some(vector)) = (tree, vector) else {
            return Err(format!("configuration `{key}` is missing a backend"));
        };
        if tree <= vector {
            tree_wins += 1;
        }
    }
    Ok(BaselineSummary {
        records: records.len(),
        configs: configs.len(),
        tree_wins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::gen::scenarios;

    #[test]
    fn single_trace_baseline_round_trips_through_validation() {
        let trace = scenarios::star(8, 2_000, 1);
        let records = collect_trace("star-tiny", &trace);
        assert_eq!(records.len(), PartialOrderKind::ALL.len() * 2);
        let json = to_json(&records, true);
        let summary = validate(&json).expect("self-produced baseline must validate");
        assert_eq!(summary.records, records.len());
        assert_eq!(summary.configs, PartialOrderKind::ALL.len());
    }

    #[test]
    fn validation_names_the_offending_field() {
        let trace = scenarios::star(4, 500, 1);
        let records = collect_trace("star-tiny", &trace);
        let good = to_json(&records, true);

        let bad = good.replace("\"joins\"", "\"jions\"");
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("joins"), "error `{err}` must name the field");

        let bad = good.replace(&format!("\"{SCHEMA}\""), "\"something-else\"");
        assert!(validate(&bad).unwrap_err().contains("schema"));

        assert!(validate("{ not json").unwrap_err().contains("JSON"));
    }

    #[test]
    fn records_carry_consistent_work_metrics() {
        let trace = scenarios::pairwise(6, 1_500, 2);
        for r in collect_trace("pairwise-tiny", &trace) {
            assert!(r.ds_work >= r.vt_work, "entries touched >= entries changed");
            assert!(r.vt_work > 0);
            assert!(r.events == trace.len());
            assert!(r.peak_clock_bytes > 0);
            if r.backend == ClockKind::Tree {
                assert!(
                    r.ds_work <= 3 * r.vt_work,
                    "{}/{:?}: Theorem 1 must hold in the baseline too",
                    r.order,
                    r.backend
                );
            }
        }
    }
}
