//! The `tcr bench --json` perf baseline: a schema-stable snapshot of
//! hot-path cost, recorded per PR as `BENCH_<pr>.json`.
//!
//! Every record is one *(scenario × threads) × partial order × clock
//! backend* cell with the numbers that matter for the trajectory:
//!
//! - `seconds` — mean wall time over [`REPETITIONS`] pooled runs,
//!   after one untimed warm-up repetition that grows the clock buffers
//!   (the timed runs are allocation-free, so the mean reflects steady
//!   state);
//! - `joins` / `copies` / `deep_copies` — operation counts;
//! - `vt_work` / `ds_work` — the paper's Section 4 work metrics;
//! - `peak_clock_bytes` — heap owned by the engine's clocks after the
//!   run (clocks only grow, so the value after a run is the run's peak);
//! - `pool_fresh` / `pool_recycled` — the cell's [`ClockPool`] traffic
//!   counters, recorded so CI catches allocation regressions: in
//!   steady state `pool_fresh` stays at the cold-start count and
//!   everything else recycles.
//!
//! The core scenario set is the paper's Figure 10 quartet (single-lock,
//! skewed-locks, star, pairwise), where the TC-vs-VC comparison is
//! controlled and reproducible; the *full* scale additionally folds in
//! the five structured workload families (fork-join trees, barrier
//! phases, pipelines, read-mostly contention, bursty channels) at a
//! budgeted size, so access-heavy workloads appear in the trajectory
//! without blowing the CI time budget. [`validate`] checks a produced
//! document against the schema — CI runs it on every PR and uploads the
//! artifact so the perf trajectory is visible over time.

use tc_core::{ClockPool, HybridClock, LogicalClock, TreeClock, VectorClock};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, RunMetrics, ShbEngine};
use tc_trace::gen::Scenario;
use tc_trace::Trace;

use crate::json::Value;
use crate::runner::{measure_clock, ClockKind, Mode, REPETITIONS};

/// Identifier of the document format (the `schema` field).
pub const SCHEMA: &str = "treeclocks/bench-baseline";

/// Version of the document format (the `version` field). Bump on any
/// breaking change to the record fields.
///
/// v2: added the `hybrid` backend (every configuration now carries
/// three backend records) and the `pool_fresh` / `pool_recycled`
/// telemetry fields.
///
/// v3: records are heterogeneous, discriminated by a required `kind`
/// field — `engine` (the v2 grid cells), `ingest` (events/sec through
/// the live `tcr serve` socket path, text vs binary × single-session
/// vs 1000-session fan-in), `suite` (Table-3-style per-benchmark
/// entries with per-backend wall times), and `calibration` (the
/// hybrid's dense-cutoff sensitivity).
///
/// v4: added the `parallel` record kind (epoch-batched intra-session
/// detection throughput per backend × worker count, with a
/// `workers: 0` sequential baseline row), and the binary fan-in
/// ingest cell now measures multi-session frames synchronized by one
/// `stats-all` round trip instead of per-session `use`/`stats` pairs.
///
/// v5: added the `churn` record kind (spawn/join-churn memory cells:
/// the same trace streamed with identity-based slot recycling on and
/// off, with `recycled_slots` and both `peak_clock_bytes_on` /
/// `peak_clock_bytes_off` columns), and the structured-family grid of
/// `--full` now includes the `spawn-join-churn` scenario.
///
/// v6: added the `telemetry` record kind (the always-on telemetry
/// overhead A/B: best single-session binary ingest events/sec with the
/// live registry vs the `NullRecorder` configuration, plus the derived
/// `overhead_pct`) and the `phase` record kind (the epoch-parallel
/// pipeline's per-phase latency summary — count, total and
/// p50/p95/p99 microseconds for partition/scatter/execute/gather/
/// barrier at a recorded worker count).
///
/// v7: added the `cluster` record kind (multi-node serve cells from
/// the `tc_cluster` ring, discriminated by a `cell` field: `forward`
/// is the owner-gateway vs peer-gateway forwarding tax, `failover` is
/// the crash-to-promoted recovery latency, `stable-gc` bounds shipped
/// checkpoint-delta bytes by the raw checkpoint bytes they replaced)
/// and the `obs-period` record kind (the hybrid's tree-observation-
/// period A/B on the dense star workload, which justified widening the
/// default period from 2 to 4).
pub const SCHEMA_VERSION: u64 = 7;

/// One measured cell of the baseline grid.
#[derive(Clone, Debug)]
pub struct BaselineRecord {
    /// Scenario (or trace file) name.
    pub scenario: String,
    /// Thread count of the generated trace.
    pub threads: u32,
    /// Event count of the generated trace.
    pub events: usize,
    /// The partial order computed.
    pub order: PartialOrderKind,
    /// The clock representation used.
    pub backend: ClockKind,
    /// Mean wall-clock seconds over the pooled repetitions.
    pub seconds: f64,
    /// Join operations performed.
    pub joins: u64,
    /// Copy operations performed.
    pub copies: u64,
    /// `CopyCheckMonotone` deep-copy fallbacks.
    pub deep_copies: u64,
    /// The representation-independent work lower bound.
    pub vt_work: u64,
    /// Entries touched by the concrete data structure.
    pub ds_work: u64,
    /// Heap bytes owned by the engine's clocks after the run.
    pub peak_clock_bytes: usize,
    /// Clock-pool acquires served by a fresh allocation across the
    /// cell's runs (warm-up + timed repetitions + counted run).
    pub pool_fresh: u64,
    /// Clock-pool acquires served from the free list.
    pub pool_recycled: u64,
}

/// One Table-3-style suite entry folded into the baseline: the trace's
/// shape plus per-backend HB wall times, so the committed JSON carries
/// the paper-suite trajectory alongside the scenario grid.
#[derive(Clone, Debug)]
pub struct SuiteFoldRecord {
    /// The suite entry's stable name.
    pub name: String,
    /// Thread count of the generated trace.
    pub threads: u32,
    /// Event count of the generated trace.
    pub events: usize,
    /// Percentage of synchronization events (the paper's Table 3
    /// `sync%` column).
    pub sync_pct: f64,
    /// Mean HB wall time with the tree clock.
    pub tree_seconds: f64,
    /// Mean HB wall time with the vector clock.
    pub vector_seconds: f64,
    /// Mean HB wall time with the hybrid clock.
    pub hybrid_seconds: f64,
}

/// One dense-cutoff calibration cell: the hybrid's HB wall time on a
/// mid-density workload at a pinned [`tc_core::hybrid`] cutoff. Paired
/// records (same scenario, different cutoff) expose the latency delta
/// that justified the calibrated default.
#[derive(Clone, Debug)]
pub struct CalibrationRecord {
    /// Scenario name.
    pub scenario: String,
    /// Thread count of the generated trace.
    pub threads: u32,
    /// Event count of the generated trace.
    pub events: usize,
    /// The dense cutoff (entries per op) pinned for this run.
    pub cutoff: u64,
    /// Mean HB wall time with the hybrid clock at that cutoff.
    pub seconds: f64,
}

/// Folds the full 39-entry synthetic suite (at quick scale) into
/// baseline records: HB wall times for all three backends per entry.
pub fn collect_suite_fold(mut progress: impl FnMut(&str)) -> Vec<SuiteFoldRecord> {
    let mut tree_pool = ClockPool::<TreeClock>::new();
    let mut vector_pool = ClockPool::<VectorClock>::new();
    let mut hybrid_pool = ClockPool::<HybridClock>::new();
    crate::suite::suite()
        .iter()
        .map(|entry| {
            progress(&format!("suite/{}", entry.name));
            let trace = entry.generate(crate::suite::Scale::Quick);
            let sync = trace.iter().filter(|e| e.op.is_sync()).count();
            let order = PartialOrderKind::Hb;
            SuiteFoldRecord {
                name: entry.name.to_owned(),
                threads: trace.thread_count() as u32,
                events: trace.len(),
                sync_pct: 100.0 * sync as f64 / trace.len().max(1) as f64,
                tree_seconds: measure_clock::<TreeClock>(&trace, order, Mode::Po, &mut tree_pool)
                    .seconds,
                vector_seconds: measure_clock::<VectorClock>(
                    &trace,
                    order,
                    Mode::Po,
                    &mut vector_pool,
                )
                .seconds,
                hybrid_seconds: measure_clock::<HybridClock>(
                    &trace,
                    order,
                    Mode::Po,
                    &mut hybrid_pool,
                )
                .seconds,
            }
        })
        .collect()
}

/// Measures the hybrid's dense-cutoff sensitivity: pipeline and bursty
/// workloads whose arenas straddle the calibrated default, each run at
/// the conservative 2-cache-line cutoff and at the calibrated one. The
/// cutoff is pinned per pool ([`ClockPool::set_dense_cutoff`]), so the
/// process-wide default is never touched — concurrent benches and
/// tests see nothing.
pub fn collect_calibration(mut progress: impl FnMut(&str)) -> Vec<CalibrationRecord> {
    use tc_core::hybrid::{CACHE_LINE_CUTOFF, DEFAULT_DENSE_CUTOFF};
    let mut records = Vec::new();
    for scenario in [Scenario::Pipeline, Scenario::BurstyChannels] {
        let threads = 160; // past the calibrated cutoff, so it can bind
        let trace = scenario.generate(threads, 30_000, 0xCA11);
        for cutoff in [CACHE_LINE_CUTOFF, DEFAULT_DENSE_CUTOFF] {
            progress(&format!("calibration/{scenario}/{cutoff}"));
            let mut pool = ClockPool::new();
            pool.set_dense_cutoff(Some(cutoff));
            let m = measure_clock::<HybridClock>(&trace, PartialOrderKind::Hb, Mode::Po, &mut pool);
            records.push(CalibrationRecord {
                scenario: scenario.to_string(),
                threads,
                events: trace.len(),
                cutoff,
                seconds: m.seconds,
            });
        }
    }
    records
}

/// One tree-observation-period A/B cell: the hybrid's HB wall time on
/// the dense star workload at a pinned copy-observation period
/// ([`tc_core::hybrid`]'s `DEFAULT_TREE_OBS_PERIOD` sampling cadence).
/// Paired records (same scenario, different period) expose the latency
/// delta that justified widening the default from 2 to 4.
#[derive(Clone, Debug)]
pub struct ObsPeriodRecord {
    /// Scenario name.
    pub scenario: String,
    /// Thread count of the generated trace.
    pub threads: u32,
    /// Event count of the generated trace.
    pub events: usize,
    /// The tree-observation period pinned for this run.
    pub period: u8,
    /// Mean HB wall time with the hybrid clock at that period.
    pub seconds: f64,
}

/// Measures the hybrid's tree-observation-period sensitivity: the
/// dense star workload (where dense-mode copies dominate, so the
/// sampling cadence is on the hot path) run at the legacy period 2 and
/// at the calibrated default. The period is pinned per pool
/// ([`ClockPool::set_tree_obs_period`]), so the process-wide default
/// is never touched.
pub fn collect_obs_period(mut progress: impl FnMut(&str)) -> Vec<ObsPeriodRecord> {
    let threads = 360;
    let trace = Scenario::Star.generate(threads, 25_000, 0x0B50);
    let mut records = Vec::new();
    for period in [2u8, tc_core::DEFAULT_TREE_OBS_PERIOD] {
        progress(&format!("obs-period/star/{period}"));
        let mut pool = ClockPool::new();
        pool.set_tree_obs_period(Some(period));
        let m = measure_clock::<HybridClock>(&trace, PartialOrderKind::Hb, Mode::Po, &mut pool);
        records.push(ObsPeriodRecord {
            scenario: Scenario::Star.to_string(),
            threads,
            events: trace.len(),
            period,
            seconds: m.seconds,
        });
    }
    records
}

/// One spawn/join-churn memory cell: the same churn trace driven
/// through the streaming detector twice — identity-based slot
/// recycling on and off — recording the recycled-slot count and the
/// peak clock footprint of each run. The paired peak columns are the
/// baseline's bounded-memory evidence: with recycling on, clock width
/// tracks the live-thread cap instead of the total spawn count.
#[derive(Clone, Debug)]
pub struct ChurnRecord {
    /// Scenario name (`spawn-join-churn`).
    pub scenario: String,
    /// Total threads ever spawned across the trace.
    pub total_threads: u32,
    /// The configured live-width cap (workers per wave).
    pub live_threads: u32,
    /// Event count of the generated trace.
    pub events: usize,
    /// Wall time of the recycling-on streaming run.
    pub seconds: f64,
    /// Slots the recycling run reclaimed and rebound.
    pub recycled_slots: u64,
    /// Peak clock bytes with recycling on.
    pub peak_clock_bytes_on: usize,
    /// Peak clock bytes with recycling off (same trace, same backend).
    pub peak_clock_bytes_off: usize,
}

/// Measures the spawn/join-churn memory cells: hybrid-backend
/// streaming runs over churn traces whose total spawn count grows at a
/// fixed live width, with recycling on and off.
pub fn collect_churn(mut progress: impl FnMut(&str)) -> Vec<ChurnRecord> {
    use tc_stream::{DetectorConfig, IncrementalDetector};
    let live = 16u32;
    let mut records = Vec::new();
    // A 10x total-spawn growth at a fixed live width: the paired peak
    // columns show recycling-on staying flat while recycling-off grows
    // with the total-ever thread dimension.
    for (total, events) in [(128u32, 20_000usize), (1280, 40_000)] {
        progress(&format!("churn/{total}"));
        let trace = tc_trace::gen::families::spawn_join_churn_sized(total, live, events, 0xC4A2);
        let run = |recycle: bool| -> (f64, u64, usize) {
            let config = DetectorConfig {
                recycle_slots: recycle,
                ..DetectorConfig::default()
            };
            let mut d = IncrementalDetector::<HybridClock>::new(config);
            let start = std::time::Instant::now();
            for e in &trace {
                d.feed(e).expect("churn traces are well-formed");
            }
            (
                start.elapsed().as_secs_f64(),
                d.recycled_slots(),
                d.peak_clock_bytes(),
            )
        };
        let (seconds, recycled_slots, peak_on) = run(true);
        let (_, _, peak_off) = run(false);
        records.push(ChurnRecord {
            scenario: "spawn-join-churn".to_owned(),
            total_threads: total,
            live_threads: live,
            events: trace.len(),
            seconds,
            recycled_slots,
            peak_clock_bytes_on: peak_on,
            peak_clock_bytes_off: peak_off,
        });
    }
    records
}

/// The shape of one baseline collection: which grids to run and at what
/// event budget. The constructors encode the three CLI spellings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineScale {
    /// Thread counts of the FIG10 grid. High enough that the tree
    /// clock's sublinear operations can dominate its pointer-chasing
    /// overhead (the paper's Figure 10 sweeps 10–360).
    pub threads: &'static [u32],
    /// Events per FIG10 trace.
    pub events: usize,
    /// Also measure the five structured workload families.
    pub families: bool,
    /// Thread count of the family traces.
    pub family_threads: u32,
    /// Events per family trace — the per-record runtime budget (family
    /// traces are access-heavy, so they run at a smaller event count
    /// than the sync-only FIG10 quartet to keep each record's
    /// warm-up + 3 timed + 1 counted runs well under a second).
    pub family_events: usize,
    /// Mode string recorded in the document.
    pub mode: &'static str,
}

impl BaselineScale {
    /// The CI scale: one thread count, short traces, FIG10 only.
    pub fn quick() -> Self {
        BaselineScale {
            threads: &[360],
            events: 25_000,
            families: false,
            family_threads: 64,
            family_events: 10_000,
            mode: "quick",
        }
    }

    /// The default scale: two thread counts, full-length FIG10 traces.
    pub fn default_scale() -> Self {
        BaselineScale {
            threads: &[128, 360],
            events: 100_000,
            families: false,
            family_threads: 64,
            family_events: 40_000,
            mode: "default",
        }
    }

    /// The broad scale: the chosen base grid plus the five structured
    /// families at their budgeted size.
    pub fn full(quick: bool) -> Self {
        let base = if quick {
            BaselineScale::quick()
        } else {
            BaselineScale::default_scale()
        };
        BaselineScale {
            families: true,
            mode: if quick { "full-quick" } else { "full" },
            ..base
        }
    }
}

/// Runs the baseline grid at `scale`: FIG10 scenarios (and, at full
/// scale, the structured families) × HB/SHB/MAZ × tree/vector/hybrid.
/// `progress` is called before each scenario×threads cell.
pub fn collect(scale: BaselineScale, mut progress: impl FnMut(&str)) -> Vec<BaselineRecord> {
    let mut records = Vec::new();
    for scenario in Scenario::FIG10 {
        for &threads in scale.threads {
            progress(&format!("{scenario}/{threads}"));
            let trace = scenario.generate(threads, scale.events, 0xBE2C + u64::from(threads));
            collect_trace_into(&scenario.to_string(), &trace, &mut records);
        }
    }
    if scale.families {
        for scenario in Scenario::ALL {
            if Scenario::FIG10.contains(&scenario) {
                continue;
            }
            let threads = scale.family_threads.max(scenario.min_threads());
            progress(&format!("{scenario}/{threads}"));
            let trace =
                scenario.generate(threads, scale.family_events, 0xFA31 + u64::from(threads));
            collect_trace_into(&scenario.to_string(), &trace, &mut records);
        }
    }
    records
}

/// Measures a single (already loaded) trace across every order ×
/// backend — the `tcr bench --trace FILE` path.
pub fn collect_trace(name: &str, trace: &Trace) -> Vec<BaselineRecord> {
    let mut records = Vec::new();
    collect_trace_into(name, trace, &mut records);
    records
}

fn collect_trace_into(name: &str, trace: &Trace, records: &mut Vec<BaselineRecord>) {
    for order in PartialOrderKind::ALL {
        records.push(record_for::<TreeClock>(name, trace, order, ClockKind::Tree));
        records.push(record_for::<VectorClock>(
            name,
            trace,
            order,
            ClockKind::Vector,
        ));
        records.push(record_for::<HybridClock>(
            name,
            trace,
            order,
            ClockKind::Hybrid,
        ));
    }
}

fn record_for<C: LogicalClock>(
    name: &str,
    trace: &Trace,
    order: PartialOrderKind,
    backend: ClockKind,
) -> BaselineRecord {
    let mut pool = ClockPool::<C>::new();
    let timed = measure_clock::<C>(trace, order, Mode::Po, &mut pool);
    let (metrics, peak_clock_bytes) = counted_run::<C>(trace, order, &mut pool);
    BaselineRecord {
        scenario: name.to_owned(),
        threads: trace.thread_count() as u32,
        events: trace.len(),
        order,
        backend,
        seconds: timed.seconds,
        joins: metrics.joins,
        copies: metrics.copies,
        deep_copies: metrics.deep_copies,
        vt_work: metrics.vt_work(),
        ds_work: metrics.ds_work(),
        peak_clock_bytes,
        pool_fresh: pool.fresh(),
        pool_recycled: pool.recycled(),
    }
}

/// An instrumented run that also reports the engine's final clock
/// footprint (the timed path cannot: `run_pooled` tears the engine
/// down).
fn counted_run<C: LogicalClock>(
    trace: &Trace,
    order: PartialOrderKind,
    pool: &mut ClockPool<C>,
) -> (RunMetrics, usize) {
    match order {
        PartialOrderKind::Hb => {
            let mut e = HbEngine::<C>::with_pool(trace, std::mem::take(pool));
            for ev in trace {
                e.process_counted(ev);
            }
            let result = (*e.metrics(), e.clock_bytes());
            *pool = e.into_pool();
            result
        }
        PartialOrderKind::Shb => {
            let mut e = ShbEngine::<C>::with_pool(trace, std::mem::take(pool));
            for ev in trace {
                e.process_counted(ev);
            }
            let result = (*e.metrics(), e.clock_bytes());
            *pool = e.into_pool();
            result
        }
        PartialOrderKind::Maz => {
            let mut e = MazEngine::<C>::with_pool(trace, std::mem::take(pool));
            for ev in trace {
                e.process_counted(ev);
            }
            let result = (*e.metrics(), e.clock_bytes());
            *pool = e.into_pool();
            result
        }
    }
}

/// A full baseline document: engine grid cells plus the v3/v4 record
/// families (ingest throughput, suite fold, cutoff calibration,
/// parallel detection).
#[derive(Clone, Debug, Default)]
pub struct BenchDoc {
    /// Engine grid cells (`kind: "engine"`).
    pub engine: Vec<BaselineRecord>,
    /// Ingest throughput cells (`kind: "ingest"`).
    pub ingest: Vec<crate::ingest::IngestRecord>,
    /// Suite-fold entries (`kind: "suite"`).
    pub suite: Vec<SuiteFoldRecord>,
    /// Dense-cutoff calibration cells (`kind: "calibration"`).
    pub calibration: Vec<CalibrationRecord>,
    /// Epoch-parallel detection cells (`kind: "parallel"`).
    pub parallel: Vec<crate::parallel::ParallelRecord>,
    /// Spawn/join-churn memory cells (`kind: "churn"`).
    pub churn: Vec<ChurnRecord>,
    /// Telemetry-overhead A/B cells (`kind: "telemetry"`).
    pub telemetry: Vec<crate::telemetry::TelemetryOverheadRecord>,
    /// Epoch-parallel phase summaries (`kind: "phase"`).
    pub phases: Vec<crate::telemetry::PhaseBreakdownRecord>,
    /// Multi-node serve cells (`kind: "cluster"`).
    pub cluster: Vec<crate::cluster::ClusterRecord>,
    /// Tree-observation-period A/B cells (`kind: "obs-period"`).
    pub obs_period: Vec<ObsPeriodRecord>,
}

/// Renders engine-only records as the schema-stable JSON document
/// (the `tcr bench --trace FILE` path).
pub fn to_json(records: &[BaselineRecord], mode: &str) -> String {
    to_json_doc(
        &BenchDoc {
            engine: records.to_vec(),
            ..BenchDoc::default()
        },
        mode,
    )
}

/// Renders a full document — all four record families, each entry
/// discriminated by its `kind` field.
pub fn to_json_doc(doc: &BenchDoc, mode: &str) -> String {
    let mut records: Vec<Value> = doc
        .engine
        .iter()
        .map(|r| {
            Value::obj([
                ("kind", "engine".into()),
                ("scenario", r.scenario.as_str().into()),
                ("threads", r.threads.into()),
                ("events", r.events.into()),
                ("order", r.order.to_string().into()),
                ("backend", r.backend.name().into()),
                ("seconds", r.seconds.into()),
                ("joins", r.joins.into()),
                ("copies", r.copies.into()),
                ("deep_copies", r.deep_copies.into()),
                ("vt_work", r.vt_work.into()),
                ("ds_work", r.ds_work.into()),
                ("peak_clock_bytes", r.peak_clock_bytes.into()),
                ("pool_fresh", r.pool_fresh.into()),
                ("pool_recycled", r.pool_recycled.into()),
            ])
        })
        .collect();
    records.extend(doc.ingest.iter().map(|r| {
        Value::obj([
            ("kind", "ingest".into()),
            ("mode", r.mode.into()),
            ("sessions", r.sessions.into()),
            ("events", r.events.into()),
            ("seconds", r.seconds.into()),
            ("events_per_sec", r.events_per_sec().into()),
        ])
    }));
    records.extend(doc.suite.iter().map(|r| {
        Value::obj([
            ("kind", "suite".into()),
            ("name", r.name.as_str().into()),
            ("threads", r.threads.into()),
            ("events", r.events.into()),
            ("sync_pct", r.sync_pct.into()),
            ("tree_seconds", r.tree_seconds.into()),
            ("vector_seconds", r.vector_seconds.into()),
            ("hybrid_seconds", r.hybrid_seconds.into()),
        ])
    }));
    records.extend(doc.calibration.iter().map(|r| {
        Value::obj([
            ("kind", "calibration".into()),
            ("scenario", r.scenario.as_str().into()),
            ("threads", r.threads.into()),
            ("events", r.events.into()),
            ("cutoff", r.cutoff.into()),
            ("seconds", r.seconds.into()),
        ])
    }));
    records.extend(doc.parallel.iter().map(|r| {
        Value::obj([
            ("kind", "parallel".into()),
            ("backend", r.backend.into()),
            ("workers", r.workers.into()),
            ("events", r.events.into()),
            ("seconds", r.seconds.into()),
            ("events_per_sec", r.events_per_sec().into()),
        ])
    }));
    records.extend(doc.churn.iter().map(|r| {
        Value::obj([
            ("kind", "churn".into()),
            ("scenario", r.scenario.as_str().into()),
            ("total_threads", r.total_threads.into()),
            ("live_threads", r.live_threads.into()),
            ("events", r.events.into()),
            ("seconds", r.seconds.into()),
            ("recycled_slots", r.recycled_slots.into()),
            ("peak_clock_bytes_on", r.peak_clock_bytes_on.into()),
            ("peak_clock_bytes_off", r.peak_clock_bytes_off.into()),
        ])
    }));
    records.extend(doc.telemetry.iter().map(|r| {
        Value::obj([
            ("kind", "telemetry".into()),
            ("events", r.events.into()),
            ("on_events_per_sec", r.on_events_per_sec.into()),
            ("off_events_per_sec", r.off_events_per_sec.into()),
            ("overhead_pct", r.overhead_pct().into()),
        ])
    }));
    records.extend(doc.phases.iter().map(|r| {
        Value::obj([
            ("kind", "phase".into()),
            ("phase", r.phase.into()),
            ("workers", r.workers.into()),
            ("count", r.count.into()),
            ("total_us", r.total_us.into()),
            ("p50_us", r.p50_us.into()),
            ("p95_us", r.p95_us.into()),
            ("p99_us", r.p99_us.into()),
        ])
    }));
    records.extend(doc.cluster.iter().map(|r| {
        use crate::cluster::ClusterRecord;
        match r {
            ClusterRecord::Forward {
                nodes,
                events,
                local_seconds,
                forwarded_seconds,
            } => Value::obj([
                ("kind", "cluster".into()),
                ("cell", "forward".into()),
                ("nodes", (*nodes).into()),
                ("events", (*events).into()),
                ("local_seconds", (*local_seconds).into()),
                ("forwarded_seconds", (*forwarded_seconds).into()),
                ("local_events_per_sec", r.local_events_per_sec().into()),
                (
                    "forwarded_events_per_sec",
                    r.forwarded_events_per_sec().into(),
                ),
                ("overhead_pct", r.overhead_pct().into()),
            ]),
            ClusterRecord::Failover {
                nodes,
                sessions,
                events,
                recovery_ms,
            } => Value::obj([
                ("kind", "cluster".into()),
                ("cell", "failover".into()),
                ("nodes", (*nodes).into()),
                ("sessions", (*sessions).into()),
                ("events", (*events).into()),
                ("recovery_ms", (*recovery_ms).into()),
            ]),
            ClusterRecord::StableGc {
                nodes,
                events,
                deltas,
                delta_bytes,
                snapshot_bytes,
            } => Value::obj([
                ("kind", "cluster".into()),
                ("cell", "stable-gc".into()),
                ("nodes", (*nodes).into()),
                ("events", (*events).into()),
                ("deltas", (*deltas).into()),
                ("delta_bytes", (*delta_bytes).into()),
                ("snapshot_bytes", (*snapshot_bytes).into()),
            ]),
        }
    }));
    records.extend(doc.obs_period.iter().map(|r| {
        Value::obj([
            ("kind", "obs-period".into()),
            ("scenario", r.scenario.as_str().into()),
            ("threads", r.threads.into()),
            ("events", r.events.into()),
            ("period", u64::from(r.period).into()),
            ("seconds", r.seconds.into()),
        ])
    }));
    let doc = Value::obj([
        ("schema", SCHEMA.into()),
        ("version", SCHEMA_VERSION.into()),
        ("mode", mode.into()),
        ("repetitions", u64::from(REPETITIONS).into()),
        ("records", Value::Arr(records)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

/// Aggregate facts extracted by [`validate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineSummary {
    /// Total records in the document.
    pub records: usize,
    /// Distinct scenario × threads × order configurations.
    pub configs: usize,
    /// Configurations where the tree clock's wall time is at most the
    /// vector clock's.
    pub tree_wins: usize,
    /// Configurations where the hybrid clock's wall time is at most
    /// twice the vector clock's (the dense-regime target) — the
    /// trajectory number for the adaptive representation.
    pub hybrid_within_2x: usize,
    /// Ingest records in the document.
    pub ingest: usize,
    /// Suite-fold records in the document.
    pub suite: usize,
    /// Calibration records in the document.
    pub calibration: usize,
    /// Best binary-over-text events/sec ratio among ingest cells with
    /// matching session counts (0.0 when the document has none).
    pub binary_speedup: f64,
    /// Parallel-detection records in the document.
    pub parallel: usize,
    /// Best parallel-over-sequential events/sec ratio among parallel
    /// cells of the same backend (0.0 when the document has none).
    pub parallel_speedup: f64,
    /// Spawn/join-churn memory records in the document.
    pub churn: usize,
    /// Telemetry-overhead A/B records in the document.
    pub telemetry: usize,
    /// Epoch-parallel phase-summary records in the document.
    pub phase: usize,
    /// Worst `overhead_pct` among telemetry records (0.0 when the
    /// document has none; negative means telemetry-on was faster).
    pub telemetry_overhead_pct: f64,
    /// Multi-node serve records in the document.
    pub cluster: usize,
    /// Tree-observation-period A/B records in the document.
    pub obs_period: usize,
    /// Worst `overhead_pct` among cluster forward cells (0.0 when the
    /// document has none; negative means the forwarded path was faster
    /// than the noise floor).
    pub cluster_forward_overhead_pct: f64,
    /// Worst `recovery_ms` among cluster failover cells (0.0 when the
    /// document has none).
    pub cluster_recovery_ms: f64,
}

const REQUIRED_NUMS: [&str; 10] = [
    "threads",
    "events",
    "seconds",
    "joins",
    "copies",
    "deep_copies",
    "vt_work",
    "ds_work",
    "pool_fresh",
    "pool_recycled",
];

const BACKENDS: [&str; 3] = ["tree", "vector", "hybrid"];

/// Valid `phase` values of the v6 `phase` record kind (kept in sync
/// with [`tc_stream::PHASES`], but spelled out so validation does not
/// depend on the service crate's ordering).
const PHASE_NAMES: [&str; 5] = ["partition", "scatter", "execute", "gather", "barrier"];

/// Parses and schema-checks a baseline document.
///
/// # Errors
///
/// Returns a message naming the first offending field: wrong
/// schema/version, a record missing a field or with a mistyped value,
/// or a configuration missing one of its three backends.
pub fn validate(text: &str) -> Result<BaselineSummary, String> {
    let doc = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("schema is {other:?}, expected {SCHEMA:?}")),
    }
    match doc.get("version").and_then(Value::as_num) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        other => return Err(format!("version is {other:?}, expected {SCHEMA_VERSION}")),
    }
    let records = doc
        .get("records")
        .and_then(Value::as_arr)
        .ok_or("missing `records` array")?;
    if records.is_empty() {
        return Err("`records` is empty".into());
    }

    // (scenario, threads, order) -> seconds per backend, BACKENDS order.
    type BackendSeconds = [Option<f64>; 3];
    let mut configs: Vec<(String, BackendSeconds)> = Vec::new();
    // (sessions, events/sec) per ingest mode, for the speedup summary.
    let mut ingest_cells: Vec<(&str, f64, f64)> = Vec::new();
    // (backend, workers, events/sec) for the parallel speedup summary.
    let mut parallel_cells: Vec<(&str, f64, f64)> = Vec::new();
    let (mut ingest, mut suite, mut calibration, mut parallel, mut churn) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    let (mut telemetry, mut phase) = (0usize, 0usize);
    let mut telemetry_overhead_pct = 0.0f64;
    let (mut cluster, mut obs_period) = (0usize, 0usize);
    let mut cluster_forward_overhead_pct = 0.0f64;
    let mut cluster_recovery_ms = 0.0f64;
    for (i, r) in records.iter().enumerate() {
        let field = |name: &str| {
            r.get(name)
                .ok_or_else(|| format!("record {i}: missing field `{name}`"))
        };
        let num_field = |name: &str| -> Result<f64, String> {
            let v = r
                .get(name)
                .ok_or_else(|| format!("record {i}: missing field `{name}`"))?
                .as_num()
                .ok_or_else(|| format!("record {i}: `{name}` is not a number"))?;
            if v < 0.0 {
                return Err(format!("record {i}: `{name}` is negative"));
            }
            Ok(v)
        };
        let kind = field("kind")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `kind` is not a string"))?;
        match kind {
            "engine" => {} // validated by the grid logic below
            "ingest" => {
                ingest += 1;
                let mode = field("mode")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `mode` is not a string"))?;
                if !["text", "binary"].contains(&mode) {
                    return Err(format!("record {i}: unknown ingest mode `{mode}`"));
                }
                let sessions = num_field("sessions")?;
                num_field("events")?;
                num_field("seconds")?;
                let rate = num_field("events_per_sec")?;
                if sessions < 1.0 {
                    return Err(format!("record {i}: ingest `sessions` must be >= 1"));
                }
                ingest_cells.push((mode, sessions, rate));
                continue;
            }
            "suite" => {
                suite += 1;
                field("name")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `name` is not a string"))?;
                for name in [
                    "threads",
                    "events",
                    "sync_pct",
                    "tree_seconds",
                    "vector_seconds",
                    "hybrid_seconds",
                ] {
                    num_field(name)?;
                }
                continue;
            }
            "calibration" => {
                calibration += 1;
                field("scenario")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `scenario` is not a string"))?;
                for name in ["threads", "events", "seconds"] {
                    num_field(name)?;
                }
                if num_field("cutoff")? < 1.0 {
                    return Err(format!("record {i}: calibration `cutoff` must be >= 1"));
                }
                continue;
            }
            "parallel" => {
                parallel += 1;
                let backend = field("backend")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `backend` is not a string"))?;
                if !BACKENDS.contains(&backend) {
                    return Err(format!("record {i}: unknown backend `{backend}`"));
                }
                let workers = num_field("workers")?;
                num_field("events")?;
                num_field("seconds")?;
                let rate = num_field("events_per_sec")?;
                parallel_cells.push((backend, workers, rate));
                continue;
            }
            "churn" => {
                churn += 1;
                field("scenario")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `scenario` is not a string"))?;
                for name in [
                    "total_threads",
                    "live_threads",
                    "events",
                    "seconds",
                    "recycled_slots",
                    "peak_clock_bytes_on",
                    "peak_clock_bytes_off",
                ] {
                    num_field(name)?; // rejects missing and negative values
                }
                if num_field("live_threads")? < 2.0 {
                    return Err(format!("record {i}: churn `live_threads` must be >= 2"));
                }
                continue;
            }
            "telemetry" => {
                telemetry += 1;
                num_field("events")?;
                if num_field("on_events_per_sec")? <= 0.0 || num_field("off_events_per_sec")? <= 0.0
                {
                    return Err(format!(
                        "record {i}: telemetry rates must be positive (a zero rate \
                         means a configuration was never measured)"
                    ));
                }
                // Unlike every other number, the tax may legitimately
                // be negative (telemetry-on faster than the noise
                // floor), so it skips `num_field`'s sign check.
                let pct = field("overhead_pct")?
                    .as_num()
                    .ok_or_else(|| format!("record {i}: `overhead_pct` is not a number"))?;
                telemetry_overhead_pct = telemetry_overhead_pct.max(pct);
                continue;
            }
            "phase" => {
                phase += 1;
                let name = field("phase")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `phase` is not a string"))?;
                if !PHASE_NAMES.contains(&name) {
                    return Err(format!("record {i}: unknown phase `{name}`"));
                }
                for name in ["workers", "count", "total_us", "p50_us", "p95_us", "p99_us"] {
                    num_field(name)?;
                }
                if num_field("count")? < 1.0 {
                    return Err(format!(
                        "record {i}: phase `count` must be >= 1 (an unsampled phase \
                         means the run never took the epoch path)"
                    ));
                }
                continue;
            }
            "cluster" => {
                cluster += 1;
                let cell = field("cell")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `cell` is not a string"))?;
                match cell {
                    "forward" => {
                        for name in [
                            "nodes",
                            "events",
                            "local_seconds",
                            "forwarded_seconds",
                            "local_events_per_sec",
                            "forwarded_events_per_sec",
                        ] {
                            num_field(name)?;
                        }
                        // The tax may legitimately be negative (the
                        // forwarded run landing under the noise
                        // floor), so it skips `num_field`'s sign check.
                        let pct = field("overhead_pct")?
                            .as_num()
                            .ok_or_else(|| format!("record {i}: `overhead_pct` is not a number"))?;
                        cluster_forward_overhead_pct = cluster_forward_overhead_pct.max(pct);
                    }
                    "failover" => {
                        for name in ["nodes", "sessions", "events"] {
                            num_field(name)?;
                        }
                        cluster_recovery_ms = cluster_recovery_ms.max(num_field("recovery_ms")?);
                    }
                    "stable-gc" => {
                        for name in ["nodes", "events", "deltas"] {
                            num_field(name)?;
                        }
                        let delta_bytes = num_field("delta_bytes")?;
                        let snapshot_bytes = num_field("snapshot_bytes")?;
                        if delta_bytes > snapshot_bytes {
                            return Err(format!(
                                "record {i}: stable-gc delta bytes exceed snapshot bytes \
                                 ({delta_bytes} vs {snapshot_bytes}) — the stable-prefix \
                                 GC is not engaging"
                            ));
                        }
                    }
                    other => return Err(format!("record {i}: unknown cluster cell `{other}`")),
                }
                continue;
            }
            "obs-period" => {
                obs_period += 1;
                field("scenario")?
                    .as_str()
                    .ok_or_else(|| format!("record {i}: `scenario` is not a string"))?;
                for name in ["threads", "events", "seconds"] {
                    num_field(name)?;
                }
                if num_field("period")? < 1.0 {
                    return Err(format!("record {i}: obs-period `period` must be >= 1"));
                }
                continue;
            }
            other => return Err(format!("record {i}: unknown record kind `{other}`")),
        }
        let scenario = field("scenario")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `scenario` is not a string"))?;
        let order = field("order")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `order` is not a string"))?;
        if !["HB", "SHB", "MAZ"].contains(&order) {
            return Err(format!("record {i}: unknown order `{order}`"));
        }
        let backend = field("backend")?
            .as_str()
            .ok_or_else(|| format!("record {i}: `backend` is not a string"))?;
        let Some(backend_slot) = BACKENDS.iter().position(|b| *b == backend) else {
            return Err(format!("record {i}: unknown backend `{backend}`"));
        };
        for name in REQUIRED_NUMS {
            let v = field(name)?
                .as_num()
                .ok_or_else(|| format!("record {i}: `{name}` is not a number"))?;
            if v < 0.0 {
                return Err(format!("record {i}: `{name}` is negative"));
            }
        }
        // peak_clock_bytes rides along but is representation-specific
        // enough to keep out of the cross-field checks.
        field("peak_clock_bytes")?
            .as_num()
            .ok_or_else(|| format!("record {i}: `peak_clock_bytes` is not a number"))?;

        let threads = field("threads")?.as_num().unwrap_or(0.0);
        let seconds = field("seconds")?.as_num().unwrap_or(0.0);
        let key = format!("{scenario}/{threads}/{order}");
        let entry = match configs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, entry)) => entry,
            None => {
                configs.push((key, [None; 3]));
                &mut configs.last_mut().expect("just pushed").1
            }
        };
        entry[backend_slot] = Some(seconds);
    }

    let mut tree_wins = 0;
    let mut hybrid_within_2x = 0;
    for (key, seconds) in &configs {
        let [Some(tree), Some(vector), Some(hybrid)] = seconds else {
            return Err(format!("configuration `{key}` is missing a backend"));
        };
        if tree <= vector {
            tree_wins += 1;
        }
        if *hybrid <= 2.0 * vector {
            hybrid_within_2x += 1;
        }
    }
    // Best binary/text ratio among same-session-count ingest pairs.
    let mut binary_speedup = 0.0f64;
    for (mode, sessions, rate) in &ingest_cells {
        if *mode != "binary" {
            continue;
        }
        for (other_mode, other_sessions, other_rate) in &ingest_cells {
            if *other_mode == "text" && other_sessions == sessions && *other_rate > 0.0 {
                binary_speedup = binary_speedup.max(rate / other_rate);
            }
        }
    }
    // Best parallel/sequential ratio among same-backend parallel cells
    // (the `workers == 0` row is each backend's sequential baseline).
    let mut parallel_speedup = 0.0f64;
    for (backend, workers, rate) in &parallel_cells {
        if *workers == 0.0 {
            continue;
        }
        for (base_backend, base_workers, base_rate) in &parallel_cells {
            if base_backend == backend && *base_workers == 0.0 && *base_rate > 0.0 {
                parallel_speedup = parallel_speedup.max(rate / base_rate);
            }
        }
    }
    Ok(BaselineSummary {
        records: records.len(),
        configs: configs.len(),
        tree_wins,
        hybrid_within_2x,
        ingest,
        suite,
        calibration,
        binary_speedup,
        parallel,
        parallel_speedup,
        churn,
        telemetry,
        phase,
        telemetry_overhead_pct,
        cluster,
        obs_period,
        cluster_forward_overhead_pct,
        cluster_recovery_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::gen::scenarios;

    #[test]
    fn single_trace_baseline_round_trips_through_validation() {
        let trace = scenarios::star(8, 2_000, 1);
        let records = collect_trace("star-tiny", &trace);
        assert_eq!(records.len(), PartialOrderKind::ALL.len() * 3);
        let json = to_json(&records, "quick");
        let summary = validate(&json).expect("self-produced baseline must validate");
        assert_eq!(summary.records, records.len());
        assert_eq!(summary.configs, PartialOrderKind::ALL.len());
    }

    #[test]
    fn full_documents_with_all_record_kinds_validate() {
        let trace = scenarios::star(4, 500, 1);
        let doc = BenchDoc {
            engine: collect_trace("star-tiny", &trace),
            ingest: vec![
                crate::ingest::IngestRecord {
                    mode: "text",
                    sessions: 1,
                    events: 1000,
                    seconds: 0.01,
                },
                crate::ingest::IngestRecord {
                    mode: "binary",
                    sessions: 1,
                    events: 1000,
                    seconds: 0.002,
                },
            ],
            suite: vec![SuiteFoldRecord {
                name: "omp16-lowsync".into(),
                threads: 16,
                events: 40_000,
                sync_pct: 3.0,
                tree_seconds: 0.01,
                vector_seconds: 0.02,
                hybrid_seconds: 0.012,
            }],
            calibration: vec![CalibrationRecord {
                scenario: "pipeline".into(),
                threads: 160,
                events: 30_000,
                cutoff: 128,
                seconds: 0.02,
            }],
            parallel: vec![
                crate::parallel::ParallelRecord {
                    backend: "tree",
                    workers: 0,
                    events: 10_000,
                    seconds: 0.04,
                },
                crate::parallel::ParallelRecord {
                    backend: "tree",
                    workers: 4,
                    events: 10_000,
                    seconds: 0.02,
                },
            ],
            churn: vec![ChurnRecord {
                scenario: "spawn-join-churn".into(),
                total_threads: 128,
                live_threads: 16,
                events: 20_000,
                seconds: 0.03,
                recycled_slots: 100,
                peak_clock_bytes_on: 40_000,
                peak_clock_bytes_off: 300_000,
            }],
            telemetry: vec![crate::telemetry::TelemetryOverheadRecord {
                events: 30_000,
                on_events_per_sec: 990_000.0,
                off_events_per_sec: 1_000_000.0,
            }],
            phases: vec![crate::telemetry::PhaseBreakdownRecord {
                phase: "execute",
                workers: 2,
                count: 24,
                total_us: 4_800,
                p50_us: 127,
                p95_us: 255,
                p99_us: 511,
            }],
            cluster: vec![
                crate::cluster::ClusterRecord::Forward {
                    nodes: 2,
                    events: 20_000,
                    local_seconds: 0.05,
                    forwarded_seconds: 0.06,
                },
                crate::cluster::ClusterRecord::Failover {
                    nodes: 3,
                    sessions: 12,
                    events: 32_768,
                    recovery_ms: 18.0,
                },
                crate::cluster::ClusterRecord::StableGc {
                    nodes: 3,
                    events: 240,
                    deltas: 30,
                    delta_bytes: 6_000,
                    snapshot_bytes: 14_000,
                },
            ],
            obs_period: vec![
                ObsPeriodRecord {
                    scenario: "star".into(),
                    threads: 360,
                    events: 25_000,
                    period: 2,
                    seconds: 0.05,
                },
                ObsPeriodRecord {
                    scenario: "star".into(),
                    threads: 360,
                    events: 25_000,
                    period: 4,
                    seconds: 0.04,
                },
            ],
        };
        let json = to_json_doc(&doc, "quick");
        let summary = validate(&json).expect("full documents must validate");
        assert_eq!(summary.ingest, 2);
        assert_eq!(summary.suite, 1);
        assert_eq!(summary.calibration, 1);
        assert_eq!(summary.parallel, 2);
        assert_eq!(summary.churn, 1);
        assert_eq!(summary.telemetry, 1);
        assert_eq!(summary.phase, 1);
        assert_eq!(summary.cluster, 3);
        assert_eq!(summary.obs_period, 2);
        assert!(
            (summary.cluster_forward_overhead_pct - 20.0).abs() < 1e-9,
            "0.06s forwarded over 0.05s local is a 20% tax: {}",
            summary.cluster_forward_overhead_pct
        );
        assert!(
            (summary.cluster_recovery_ms - 18.0).abs() < 1e-9,
            "worst failover cell carries through: {}",
            summary.cluster_recovery_ms
        );
        assert!(
            (summary.telemetry_overhead_pct - 1.0).abs() < 1e-9,
            "990k on vs 1M off is a 1% tax: {}",
            summary.telemetry_overhead_pct
        );
        assert!(
            (summary.binary_speedup - 5.0).abs() < 1e-9,
            "binary at 5x text: {}",
            summary.binary_speedup
        );
        assert!(
            (summary.parallel_speedup - 2.0).abs() < 1e-9,
            "4 workers at 2x sequential: {}",
            summary.parallel_speedup
        );

        let bad = json.replace(
            "\"kind\": \"ingest\", \"mode\": \"text\"",
            "\"kind\": \"ingest\", \"mode\": \"morse\"",
        );
        if bad != json {
            assert!(validate(&bad).unwrap_err().contains("mode"));
        }
        let bad = json.replace("\"kind\": \"calibration\"", "\"kind\": \"calibrations\"");
        assert!(validate(&bad).unwrap_err().contains("kind"));
        let bad = json.replace(
            "\"kind\": \"parallel\", \"backend\": \"tree\"",
            "\"kind\": \"parallel\", \"backend\": \"forest\"",
        );
        if bad != json {
            assert!(validate(&bad).unwrap_err().contains("backend"));
        }
        let bad = json.replace("\"peak_clock_bytes_off\"", "\"peak_clock_bytes_of\"");
        assert!(validate(&bad).unwrap_err().contains("peak_clock_bytes_off"));
        let bad = json.replace(
            "\"kind\": \"phase\", \"phase\": \"execute\"",
            "\"kind\": \"phase\", \"phase\": \"reticulate\"",
        );
        if bad != json {
            assert!(validate(&bad).unwrap_err().contains("phase"));
        }
        let bad = json.replace("\"overhead_pct\"", "\"overhead_cpt\"");
        assert!(validate(&bad).unwrap_err().contains("overhead_pct"));
        let bad = json.replace("\"cell\": \"stable-gc\"", "\"cell\": \"stable-fc\"");
        if bad != json {
            assert!(validate(&bad).unwrap_err().contains("cluster cell"));
        }
        let bad = json.replace("\"delta_bytes\": 6000", "\"delta_bytes\": 60000");
        if bad != json {
            assert!(validate(&bad).unwrap_err().contains("snapshot bytes"));
        }
        let bad = json.replace("\"period\": 2", "\"period\": 0");
        if bad != json {
            assert!(validate(&bad).unwrap_err().contains("period"));
        }
    }

    #[test]
    fn validation_names_the_offending_field() {
        let trace = scenarios::star(4, 500, 1);
        let records = collect_trace("star-tiny", &trace);
        let good = to_json(&records, "quick");

        let bad = good.replace("\"joins\"", "\"jions\"");
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("joins"), "error `{err}` must name the field");

        let bad = good.replace("\"pool_fresh\"", "\"pool_frseh\"");
        let err = validate(&bad).unwrap_err();
        assert!(
            err.contains("pool_fresh"),
            "error `{err}` must name the telemetry field"
        );

        let bad = good.replace(&format!("\"{SCHEMA}\""), "\"something-else\"");
        assert!(validate(&bad).unwrap_err().contains("schema"));

        assert!(validate("{ not json").unwrap_err().contains("JSON"));
    }

    #[test]
    fn validation_requires_all_three_backends() {
        let trace = scenarios::star(4, 500, 1);
        let mut records = collect_trace("star-tiny", &trace);
        records.retain(|r| r.backend != ClockKind::Hybrid);
        let err = validate(&to_json(&records, "quick")).unwrap_err();
        assert!(err.contains("missing a backend"), "unexpected: {err}");
    }

    #[test]
    fn records_carry_consistent_work_metrics() {
        let trace = scenarios::pairwise(6, 1_500, 2);
        for r in collect_trace("pairwise-tiny", &trace) {
            assert!(r.ds_work >= r.vt_work, "entries touched >= entries changed");
            assert!(r.vt_work > 0);
            assert!(r.events == trace.len());
            assert!(r.peak_clock_bytes > 0);
            assert!(
                r.pool_fresh > 0,
                "the cold run must have allocated its clocks"
            );
            assert!(
                r.pool_recycled >= 4 * r.pool_fresh / 2,
                "{}/{:?}: repeated pooled runs must recycle (fresh {}, recycled {})",
                r.order,
                r.backend,
                r.pool_fresh,
                r.pool_recycled
            );
            if r.backend == ClockKind::Tree {
                assert!(
                    r.ds_work <= 3 * r.vt_work,
                    "{}/{:?}: Theorem 1 must hold in the baseline too",
                    r.order,
                    r.backend
                );
            }
        }
    }

    #[test]
    fn vt_work_is_identical_across_all_three_backends() {
        let trace = scenarios::single_lock(5, 1_200, 3);
        let records = collect_trace("single-lock-tiny", &trace);
        for order in PartialOrderKind::ALL {
            let per_order: Vec<_> = records.iter().filter(|r| r.order == order).collect();
            assert_eq!(per_order.len(), 3);
            assert!(
                per_order.windows(2).all(|w| w[0].vt_work == w[1].vt_work),
                "{order}: VTWork must be representation independent"
            );
        }
    }

    #[test]
    fn full_scale_covers_the_structured_families() {
        let scale = BaselineScale::full(true);
        assert!(scale.families);
        assert_eq!(scale.mode, "full-quick");
        // The family grid adds exactly the six non-FIG10 scenarios
        // (the five structured families plus spawn/join churn).
        let non_fig10 = Scenario::ALL
            .into_iter()
            .filter(|s| !Scenario::FIG10.contains(s))
            .count();
        assert_eq!(non_fig10, 6);
    }
}
