//! Timing runner: measures partial-order computation (and optionally
//! the analysis on top) for one trace, one partial order and one clock
//! representation, following the paper's protocol (three repetitions,
//! averaged).

use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use tc_analysis::{HbRaceDetector, MazAnalyzer, ShbRaceDetector};
use tc_core::{ClockPool, HybridClock, LogicalClock, TreeClock, VectorClock};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, RunMetrics, ShbEngine};
use tc_trace::Trace;

/// Which clock data structure to run with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClockKind {
    /// The paper's tree clock.
    Tree,
    /// The flat vector clock baseline.
    Vector,
    /// The adaptive flat/tree hybrid.
    Hybrid,
}

impl ClockKind {
    /// Every representation, tree first.
    pub const ALL: [ClockKind; 3] = [ClockKind::Tree, ClockKind::Vector, ClockKind::Hybrid];

    /// The stable lowercase name used in baseline JSON records and CLI
    /// output.
    pub fn name(self) -> &'static str {
        match self {
            ClockKind::Tree => "tree",
            ClockKind::Vector => "vector",
            ClockKind::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for ClockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClockKind::Tree => "TC",
            ClockKind::Vector => "VC",
            ClockKind::Hybrid => "HC",
        })
    }
}

impl FromStr for ClockKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tc" | "tree" => Ok(ClockKind::Tree),
            "vc" | "vector" => Ok(ClockKind::Vector),
            "hc" | "hybrid" => Ok(ClockKind::Hybrid),
            other => Err(format!("unknown clock `{other}` (tc, vc, hc)")),
        }
    }
}

/// What to measure: the partial order alone, or with the analysis
/// component on top (the two rows of the paper's Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Partial-order computation only.
    Po,
    /// Partial order plus concurrency analysis (race detection /
    /// reversible pairs).
    PoAnalysis,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Po => "PO",
            Mode::PoAnalysis => "PO+Analysis",
        })
    }
}

/// The result of one timed run.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Work metrics of the (last) run — identical across repetitions.
    pub metrics: RunMetrics,
    /// Races / reversible pairs found (0 in [`Mode::Po`]).
    pub findings: u64,
}

/// Number of timed repetitions, as in the paper ("every measurement was
/// repeated 3 times and the average time was reported").
pub const REPETITIONS: u32 = 3;

fn time_runs(mut run: impl FnMut() -> (RunMetrics, u64)) -> Measurement {
    // One untimed warm-up repetition absorbs the cold costs — clock
    // allocations (the pooled runs reuse them afterwards), page faults,
    // cold caches — so the timed repetitions all measure steady state.
    let mut last = run();
    let mut total = 0.0;
    for _ in 0..REPETITIONS {
        let start = Instant::now();
        last = run();
        total += start.elapsed().as_secs_f64();
    }
    Measurement {
        seconds: total / f64::from(REPETITIONS),
        metrics: last.0,
        findings: last.1,
    }
}

/// Times one configuration over `trace`.
///
/// Each configuration gets a private [`ClockPool`] shared by an
/// untimed warm-up repetition and the [`REPETITIONS`] timed ones: the
/// warm-up grows the clock buffers, the timed runs are allocation-free
/// — so the averaged number reflects steady-state cost, as a
/// long-running service would see it.
pub fn measure(
    trace: &Trace,
    order: PartialOrderKind,
    clock: ClockKind,
    mode: Mode,
) -> Measurement {
    match clock {
        ClockKind::Tree => measure_clock::<TreeClock>(trace, order, mode, &mut ClockPool::new()),
        ClockKind::Vector => {
            measure_clock::<VectorClock>(trace, order, mode, &mut ClockPool::new())
        }
        ClockKind::Hybrid => {
            measure_clock::<HybridClock>(trace, order, mode, &mut ClockPool::new())
        }
    }
}

/// [`measure`] for a statically chosen clock representation, drawing
/// clocks from (and returning them to) `pool`.
pub fn measure_clock<C: LogicalClock>(
    trace: &Trace,
    order: PartialOrderKind,
    mode: Mode,
    pool: &mut ClockPool<C>,
) -> Measurement {
    match (order, mode) {
        (PartialOrderKind::Hb, Mode::Po) => {
            time_runs(|| (HbEngine::<C>::run_pooled(trace, pool), 0))
        }
        (PartialOrderKind::Shb, Mode::Po) => {
            time_runs(|| (ShbEngine::<C>::run_pooled(trace, pool), 0))
        }
        (PartialOrderKind::Maz, Mode::Po) => {
            time_runs(|| (MazEngine::<C>::run_pooled(trace, pool), 0))
        }
        (PartialOrderKind::Hb, Mode::PoAnalysis) => time_runs(|| {
            let (metrics, report) = HbRaceDetector::<C>::run_pooled(trace, pool);
            (metrics, report.total)
        }),
        (PartialOrderKind::Shb, Mode::PoAnalysis) => time_runs(|| {
            let (metrics, report) = ShbRaceDetector::<C>::run_pooled(trace, pool);
            (metrics, report.total)
        }),
        (PartialOrderKind::Maz, Mode::PoAnalysis) => time_runs(|| {
            let (metrics, report) = MazAnalyzer::<C>::run_pooled(trace, pool);
            (metrics, report.total)
        }),
    }
}

/// Computes exact work metrics (VTWork / TCWork / VCWork counters) for
/// one configuration, via the instrumented engine paths. Not timed —
/// instrumentation perturbs running time, so this is always a separate
/// pass from [`measure`].
pub fn work_metrics(trace: &Trace, order: PartialOrderKind, clock: ClockKind) -> RunMetrics {
    fn counted<C: LogicalClock>(trace: &Trace, order: PartialOrderKind) -> RunMetrics {
        match order {
            PartialOrderKind::Hb => HbEngine::<C>::run_counted(trace),
            PartialOrderKind::Shb => ShbEngine::<C>::run_counted(trace),
            PartialOrderKind::Maz => MazEngine::<C>::run_counted(trace),
        }
    }
    match clock {
        ClockKind::Tree => counted::<TreeClock>(trace, order),
        ClockKind::Vector => counted::<VectorClock>(trace, order),
        ClockKind::Hybrid => counted::<HybridClock>(trace, order),
    }
}

/// A TC-vs-VC pair of measurements for one configuration.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// The tree-clock measurement.
    pub tree: Measurement,
    /// The vector-clock measurement.
    pub vector: Measurement,
}

impl Comparison {
    /// Measures both representations on the same trace/order/mode.
    pub fn measure(trace: &Trace, order: PartialOrderKind, mode: Mode) -> Comparison {
        Comparison {
            tree: measure(trace, order, ClockKind::Tree, mode),
            vector: measure(trace, order, ClockKind::Vector, mode),
        }
    }

    /// The paper's headline number: `VC time / TC time`.
    pub fn speedup(&self) -> f64 {
        self.vector.seconds / self.tree.seconds.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::gen::scenarios;

    #[test]
    fn measure_covers_all_configurations() {
        let trace = scenarios::star(6, 600, 1);
        for order in PartialOrderKind::ALL {
            for clock in ClockKind::ALL {
                for mode in [Mode::Po, Mode::PoAnalysis] {
                    let m = measure(&trace, order, clock, mode);
                    assert!(m.seconds >= 0.0);
                    assert_eq!(m.metrics.events, trace.len() as u64);
                }
            }
        }
    }

    #[test]
    fn findings_are_zero_in_po_mode_and_equal_across_clocks() {
        let trace = {
            let mut b = tc_trace::TraceBuilder::new();
            b.write(0, "x").write(1, "x");
            b.finish()
        };
        let po = Comparison::measure(&trace, PartialOrderKind::Hb, Mode::Po);
        assert_eq!(po.tree.findings, 0);
        let an = Comparison::measure(&trace, PartialOrderKind::Hb, Mode::PoAnalysis);
        assert_eq!(an.tree.findings, 1);
        assert_eq!(an.tree.findings, an.vector.findings);
    }

    #[test]
    fn clock_kind_parses() {
        assert_eq!("tc".parse::<ClockKind>().unwrap(), ClockKind::Tree);
        assert_eq!("vector".parse::<ClockKind>().unwrap(), ClockKind::Vector);
        assert_eq!("hc".parse::<ClockKind>().unwrap(), ClockKind::Hybrid);
        assert_eq!("hybrid".parse::<ClockKind>().unwrap(), ClockKind::Hybrid);
        assert!("quartz".parse::<ClockKind>().is_err());
    }
}
