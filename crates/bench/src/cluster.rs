//! Cluster-mode cells of the perf baseline: what multi-node serving
//! costs and what failover buys.
//!
//! Three record cells, all discriminated as `kind: "cluster"` in the
//! baseline document:
//!
//! - **forward** — a two-node socket ring on loopback; the same
//!   frame-batched workload is driven once through the session's owner
//!   gateway (local dispatch) and once through the other node (every
//!   frame takes the peer-link hop there and back). The rate ratio is
//!   the client-transparent forwarding tax.
//! - **failover** — an in-process three-node ring loaded with many
//!   replicated sessions; one node is crashed and the wall time until
//!   every survivor has promoted its replicas (checkpoint resume plus
//!   in-flight tail replay) is the recovery latency.
//! - **stable-gc** — a churning session on a ticking ring; the owner's
//!   shipped delta bytes against its shipped checkpoint bytes show the
//!   matrix-clock stable-prefix promotion keeping deltas incremental
//!   (without ticks every delta would degenerate to a full snapshot).
//!
//! Like the ingest cells, the socket cell measures end to end over a
//! real loopback connection, synchronized with a trailing `stats`
//! round trip — the rate a client actually observes.

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use tc_cluster::{ClusterConfig, ClusterServer, HashRing, LocalCluster};
use tc_stream::Client;
use tc_trace::gen::WorkloadSpec;
use tc_trace::Trace;

use crate::ingest::FRAME_EVENTS;

/// One measured cluster cell.
#[derive(Clone, Debug)]
pub enum ClusterRecord {
    /// The forwarding tax: one workload, owner gateway vs peer gateway.
    Forward {
        /// Ring size (2 — the minimal forwarding topology).
        nodes: u32,
        /// Events delivered per run.
        events: u64,
        /// Wall seconds through the owner gateway.
        local_seconds: f64,
        /// Wall seconds through the non-owner gateway.
        forwarded_seconds: f64,
    },
    /// Crash-to-recovered latency for a loaded node.
    Failover {
        /// Ring size.
        nodes: u32,
        /// Sessions the crashed node owned (all promoted by survivors).
        sessions: u64,
        /// Events fed across all sessions before the crash.
        events: u64,
        /// Wall milliseconds from crash to every replica promoted.
        recovery_ms: f64,
    },
    /// Stable-prefix GC effectiveness under churn.
    StableGc {
        /// Ring size.
        nodes: u32,
        /// Churn events driven through the session.
        events: u64,
        /// Checkpoint deltas shipped.
        deltas: u64,
        /// Total serialized delta bytes shipped.
        delta_bytes: u64,
        /// Total raw checkpoint bytes those deltas covered.
        snapshot_bytes: u64,
    },
}

impl ClusterRecord {
    /// The forward cell's local (owner-gateway) rate.
    pub fn local_events_per_sec(&self) -> f64 {
        match self {
            ClusterRecord::Forward {
                events,
                local_seconds,
                ..
            } => *events as f64 / local_seconds.max(1e-9),
            _ => 0.0,
        }
    }

    /// The forward cell's forwarded (peer-gateway) rate.
    pub fn forwarded_events_per_sec(&self) -> f64 {
        match self {
            ClusterRecord::Forward {
                events,
                forwarded_seconds,
                ..
            } => *events as f64 / forwarded_seconds.max(1e-9),
            _ => 0.0,
        }
    }

    /// The forwarding tax in percent (positive = forwarding slower).
    pub fn overhead_pct(&self) -> f64 {
        match self {
            ClusterRecord::Forward {
                local_seconds,
                forwarded_seconds,
                ..
            } => 100.0 * (forwarded_seconds - local_seconds) / local_seconds.max(1e-9),
            _ => 0.0,
        }
    }
}

/// Measures all three cluster cells. `quick` trims the workloads to CI
/// size.
pub fn collect(quick: bool, mut progress: impl FnMut(&str)) -> Vec<ClusterRecord> {
    let (forward_events, failover_sessions, gc_churn) = if quick {
        (20_000, 32, 240)
    } else {
        (60_000, 128, 960)
    };
    progress("cluster/forward");
    let forward = measure_forward(forward_events);
    progress("cluster/failover");
    let failover = measure_failover(failover_sessions);
    progress("cluster/stable-gc");
    let gc = measure_stable_gc(gc_churn);
    vec![forward, failover, gc]
}

fn workload(events: usize) -> Trace {
    WorkloadSpec {
        threads: 8,
        locks: 4,
        vars: 32,
        events,
        sync_ratio: 0.2,
        shared_fraction: 0.5,
        seed: 0xC1,
        ..WorkloadSpec::default()
    }
    .generate()
}

/// Opens sessions through `gateway` until one lands on (`local` =
/// true) or off (`false`) the gateway's node, returning the bound
/// client. Placement is by consistent hash of the session id, so a
/// handful of opens always suffices.
fn open_placed(gateway: &SocketAddr, node: u32, ring: &HashRing, local: bool) -> Client {
    for _ in 0..64 {
        let client = Client::open(*gateway, "hb tc").expect("cluster open");
        let owned_here = ring.owner(client.session()) == node;
        if owned_here == local {
            return client;
        }
    }
    panic!("placement never produced the requested locality");
}

fn measure_forward(events: usize) -> ClusterRecord {
    let addrs: Vec<String> = {
        let listeners: Vec<TcpListener> = (0..2)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect()
    };
    let servers: Vec<ClusterServer> = (0..2)
        .map(|i| {
            ClusterServer::start_with(
                &addrs[i],
                addrs.clone(),
                ClusterConfig {
                    nodes: 2,
                    me: i as u32,
                    ..ClusterConfig::default()
                },
                Duration::from_millis(50),
                40,
            )
            .expect("start node")
        })
        .collect();
    let gateway: SocketAddr = addrs[0].parse().expect("addr");
    let ring = HashRing::new(2);
    let trace = workload(events);

    let run = |local: bool| -> f64 {
        let mut client = open_placed(&gateway, 0, &ring, local);
        let session = client.session();
        let start = Instant::now();
        for frame in trace.events().chunks(FRAME_EVENTS) {
            client.send_frame(session, frame).expect("frame");
        }
        client.flush().expect("flush");
        client.send("stats").expect("stats");
        client.flush().expect("flush");
        let reply = client.read_reply().expect("stats reply");
        let events = trace.len();
        assert!(
            reply.starts_with("ok") && reply.contains(&format!("events={events}")),
            "sync must account for every event: {reply}"
        );
        start.elapsed().as_secs_f64()
    };
    // Warm both paths once (peer links, socket buffers), then measure.
    run(true);
    run(false);
    let local_seconds = run(true);
    let forwarded_seconds = run(false);
    for s in servers {
        s.shutdown();
    }
    ClusterRecord::Forward {
        nodes: 2,
        events: trace.len() as u64,
        local_seconds,
        forwarded_seconds,
    }
}

fn measure_failover(sessions: usize) -> ClusterRecord {
    let mut ring = LocalCluster::with_delta_every(3, 4);
    let trace = workload(FRAME_EVENTS * 2);
    let mut ids = Vec::new();
    for conn in 0..sessions as u64 {
        let id = ring.open(0, conn, "hb tc");
        for frame in trace.events().chunks(FRAME_EVENTS) {
            let reply = ring.client_frame(0, conn, id, frame);
            assert!(reply.is_empty(), "frame rejected: {reply}");
        }
        ids.push(id);
    }
    ring.tick();
    // Crash the node owning the most sessions — the worst survivor.
    let hash = HashRing::new(3);
    let mut owned = [0u64; 3];
    for &id in &ids {
        owned[hash.owner(id) as usize] += 1;
    }
    let victim = (0..3u32)
        .max_by_key(|&n| owned[n as usize])
        .expect("3 nodes");
    let start = Instant::now();
    ring.kill(victim);
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    ClusterRecord::Failover {
        nodes: 3,
        sessions: owned[victim as usize],
        events: (ids.len() * trace.len()) as u64,
        recovery_ms,
    }
}

fn measure_stable_gc(churn: usize) -> ClusterRecord {
    let mut ring = LocalCluster::with_delta_every(3, 4);
    let id = ring.open(0, 1, "hb tc");
    let owner = ring.node_ref(0).place(id);
    for i in 0..churn {
        let line = format!("t{} w v{}", i % 3, i % 7);
        let reply = ring.client_line(0, 1, &line);
        assert!(reply.is_empty(), "churn rejected: {reply}");
        if i % 4 == 3 {
            ring.tick();
        }
    }
    let reg = ring.node_ref(owner).registry();
    ClusterRecord::StableGc {
        nodes: 3,
        events: churn as u64,
        deltas: reg.counter_value("tc_cluster_deltas_total"),
        delta_bytes: reg.counter_value("tc_cluster_delta_bytes_total"),
        snapshot_bytes: reg.counter_value("tc_cluster_checkpoint_bytes_total"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cells_measure_and_bound_sanely() {
        let records = collect(true, |_| {});
        assert_eq!(records.len(), 3);
        let forward = &records[0];
        assert!(forward.local_events_per_sec() > 0.0);
        assert!(forward.forwarded_events_per_sec() > 0.0);
        match records[1] {
            ClusterRecord::Failover {
                sessions, events, ..
            } => {
                assert!(sessions > 0, "the victim owned something");
                assert!(events > 0);
            }
            _ => panic!("second cell is failover"),
        }
        match records[2] {
            ClusterRecord::StableGc {
                deltas,
                delta_bytes,
                snapshot_bytes,
                ..
            } => {
                assert!(deltas > 0);
                assert!(
                    delta_bytes <= snapshot_bytes,
                    "stable-prefix promotion keeps deltas at or under snapshots: \
                     {delta_bytes} vs {snapshot_bytes}"
                );
            }
            _ => panic!("third cell is stable-gc"),
        }
    }
}
