//! Plain-text table rendering and CSV output for the experiment
//! runners.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table that can also render as CSV.
///
/// # Example
///
/// ```rust
/// use tc_bench::render::TextTable;
///
/// let mut t = TextTable::new(["name", "value"]);
/// t.row(["answer", "42"]);
/// assert!(t.to_string().contains("answer"));
/// assert_eq!(t.to_csv(), "name,value\nanswer,42\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} does not match {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (comma-separated; cells containing commas are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(title) = &self.title {
            writeln!(f, "## {title}")?;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>w$}", w = *w)?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for reports.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats an event/entity count compactly (`1.2M`, `48.0k`, `153`).
pub fn count(v: u64) -> String {
    let v = v as f64;
    if v >= 1e9 {
        format!("{:.1}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["a", "longer"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].contains("a"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_rows_panic() {
        TextTable::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = TextTable::new(["k", "v"]).with_title("demo");
        t.row(["a", "1"]);
        let dir = std::env::temp_dir().join("tc-bench-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), t.to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(2.972), "2.97");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1234.5), "1234");
        assert_eq!(count(153), "153");
        assert_eq!(count(48_000), "48.0k");
        assert_eq!(count(227_000_000), "227.0M");
        assert_eq!(count(2_100_000_000), "2.1B");
    }
}
