//! Plain-text table rendering and CSV output for the experiment
//! runners.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table that can also render as CSV.
///
/// # Example
///
/// ```rust
/// use tc_bench::render::TextTable;
///
/// let mut t = TextTable::new(["name", "value"]);
/// t.row(["answer", "42"]);
/// assert!(t.to_string().contains("answer"));
/// assert_eq!(t.to_csv(), "name,value\nanswer,42\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} does not match {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (comma-separated; cells containing commas are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(title) = &self.title {
            writeln!(f, "## {title}")?;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>w$}", w = *w)?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Extracts and parses one field of a CSV rendering, with errors that
/// name the offending line and column instead of panicking.
///
/// `line` is 1-based (line 1 is the header); `col` is 0-based. Quoting
/// is not interpreted — the helper is meant for the numeric columns of
/// our own [`TextTable`] CSV output, whose numbers are never quoted.
///
/// # Errors
///
/// Returns a message naming the line/column when the line does not
/// exist, has too few fields, or the field fails to parse as `T`.
///
/// # Example
///
/// ```rust
/// use tc_bench::render::csv_field;
///
/// let csv = "name,value\nanswer,42\n";
/// assert_eq!(csv_field::<u32>(csv, 2, 1), Ok(42));
/// let err = csv_field::<u32>(csv, 2, 5).unwrap_err();
/// assert!(err.contains("line 2") && err.contains("column 5"));
/// ```
pub fn csv_field<T: std::str::FromStr>(csv: &str, line: usize, col: usize) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    let row = csv.lines().nth(line.saturating_sub(1)).ok_or_else(|| {
        format!(
            "line {line}: not in the CSV ({} lines)",
            csv.lines().count()
        )
    })?;
    let fields: Vec<&str> = row.split(',').collect();
    let field = fields.get(col).ok_or_else(|| {
        format!(
            "line {line}, column {col}: line has only {} field(s)",
            fields.len()
        )
    })?;
    field
        .parse()
        .map_err(|e| format!("line {line}, column {col}: cannot parse `{field}`: {e}"))
}

/// Formats a float with sensible precision for reports.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats an event/entity count compactly (`1.2M`, `48.0k`, `153`).
pub fn count(v: u64) -> String {
    let v = v as f64;
    if v >= 1e9 {
        format!("{:.1}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["a", "longer"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].contains("a"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_rows_panic() {
        TextTable::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = TextTable::new(["k", "v"]).with_title("demo");
        t.row(["a", "1"]);
        let dir = std::env::temp_dir().join("tc-bench-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), t.to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_field_parses_and_names_errors() {
        let csv = "a,b,c\n1,2.5,x\n3,4,5\n";
        assert_eq!(csv_field::<u32>(csv, 2, 0), Ok(1));
        assert_eq!(csv_field::<f64>(csv, 2, 1), Ok(2.5));
        assert_eq!(csv_field::<u32>(csv, 3, 2), Ok(5));

        let err = csv_field::<u32>(csv, 2, 2).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("column 2"), "{err}");
        assert!(err.contains('x'), "{err}");

        let err = csv_field::<u32>(csv, 9, 0).unwrap_err();
        assert!(err.contains("line 9"), "{err}");

        let err = csv_field::<u32>(csv, 2, 7).unwrap_err();
        assert!(err.contains("only 3 field(s)"), "{err}");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(2.972), "2.97");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1234.5), "1234");
        assert_eq!(count(153), "153");
        assert_eq!(count(48_000), "48.0k");
        assert_eq!(count(227_000_000), "227.0M");
        assert_eq!(count(2_100_000_000), "2.1B");
    }
}
