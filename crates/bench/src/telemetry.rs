//! Telemetry's own cost, measured two ways:
//!
//! - **Overhead A/B** — the same single-session binary ingest workload
//!   driven against a telemetry-on server and a `NullRecorder`
//!   (telemetry-off) server. Best-of-`passes` events/sec per
//!   configuration, so per-pass loopback noise does not masquerade as
//!   tax. The budget the baseline enforces socially (not in
//!   `validate`, which would make CI flaky): always-on telemetry
//!   stays within ~2% of the null configuration.
//! - **Phase breakdown** — the epoch-parallel pipeline's five phases
//!   (partition / scatter / execute / gather / barrier) as merged
//!   histogram summaries over the same epoch-friendly frames the
//!   `parallel` records measure. This is the measured decomposition
//!   ROADMAP item 1's coordination-tax work anchors on.

use std::sync::Arc;

use tc_core::TreeClock;
use tc_orders::PartialOrderKind;
use tc_stream::{
    phase_metric_name, DetectorConfig, EpochPool, ParallelDetector, PhaseMetrics, ServeConfig,
    Server, PHASES,
};
use tc_telemetry::Registry;

use crate::parallel::ParallelScale;

/// One telemetry-overhead A/B cell.
#[derive(Clone, Debug)]
pub struct TelemetryOverheadRecord {
    /// Events of the single-session binary ingest workload.
    pub events: u64,
    /// Best events/sec with telemetry on (the default configuration).
    pub on_events_per_sec: f64,
    /// Best events/sec against the `NullRecorder` configuration.
    pub off_events_per_sec: f64,
}

impl TelemetryOverheadRecord {
    /// Telemetry's tax as a percentage of the null configuration's
    /// rate. Negative when the telemetry-on run happened to be faster
    /// (the honest reading: the tax is below the noise floor).
    pub fn overhead_pct(&self) -> f64 {
        if self.off_events_per_sec <= 0.0 {
            return 0.0;
        }
        100.0 * (self.off_events_per_sec - self.on_events_per_sec) / self.off_events_per_sec
    }
}

/// One merged phase-latency summary from the epoch-parallel pipeline.
#[derive(Clone, Debug)]
pub struct PhaseBreakdownRecord {
    /// Phase name (one of [`PHASES`]).
    pub phase: &'static str,
    /// Epoch-pool workers of the measured run.
    pub workers: usize,
    /// Samples recorded (execute counts once per epoch shard).
    pub count: u64,
    /// Total microseconds across all samples.
    pub total_us: u64,
    /// Median latency (bucket upper bound, microseconds).
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
}

/// Measures the overhead A/B: `passes` single-session binary ingest
/// runs against a telemetry-on and a telemetry-off server, keeping
/// each configuration's best rate. `progress` is called before each
/// pass.
pub fn collect_overhead(
    events: usize,
    passes: usize,
    mut progress: impl FnMut(&str),
) -> TelemetryOverheadRecord {
    let mut best = [0.0f64; 2];
    for (slot, telemetry) in [(0, true), (1, false)] {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            parallel: 0,
            telemetry,
            auth: None,
        })
        .expect("overhead bench server binds a free loopback port");
        let addr = server.local_addr();
        let label = if telemetry { "on" } else { "off" };
        for pass in 0..passes.max(1) {
            progress(&format!("telemetry/{label}/{pass}"));
            let record = crate::ingest::single_session(addr, events, true);
            best[slot] = best[slot].max(record.events_per_sec());
        }
        server.shutdown();
        server.join();
    }
    TelemetryOverheadRecord {
        events: events as u64,
        on_events_per_sec: best[0],
        off_events_per_sec: best[1],
    }
}

/// Measures the phase breakdown: the epoch-friendly frame workload fed
/// through a tree-clock [`ParallelDetector`] with live [`PhaseMetrics`]
/// attached, summarized per phase from the merged histogram shards.
pub fn collect_phases(
    scale: ParallelScale,
    workers: usize,
    mut progress: impl FnMut(&str),
) -> Vec<PhaseBreakdownRecord> {
    progress(&format!("phases/{workers}"));
    let frames = crate::parallel::epoch_frames(scale);
    let registry = Registry::new();
    let config = DetectorConfig::for_order(PartialOrderKind::Hb);
    let mut detector =
        ParallelDetector::<TreeClock>::new(config, Arc::new(EpochPool::new(workers)), 2);
    detector.set_phase_metrics(PhaseMetrics::new(&registry));
    for frame in &frames {
        detector.feed_frame(frame).expect("bench events are valid");
    }
    assert_eq!(
        detector.parallel_frames(),
        frames.len() as u64,
        "phase breakdown must measure the epoch path, not the fallback"
    );
    PHASES
        .iter()
        .map(|&phase| {
            let snap = registry.histogram_snapshot(&phase_metric_name(phase));
            PhaseBreakdownRecord {
                phase,
                workers,
                count: snap.count,
                total_us: snap.sum,
                p50_us: snap.quantile(0.5),
                p95_us: snap.quantile(0.95),
                p99_us: snap.quantile(0.99),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cell_measures_both_configurations() {
        let record = collect_overhead(2_000, 1, |_| {});
        assert_eq!(record.events, 2_000);
        assert!(record.on_events_per_sec > 0.0, "{record:?}");
        assert!(record.off_events_per_sec > 0.0, "{record:?}");
        assert!(record.overhead_pct().is_finite(), "{record:?}");
    }

    #[test]
    fn phase_breakdown_covers_all_five_phases_with_samples() {
        let scale = ParallelScale {
            pairs: 4,
            frames: 3,
            frame_events: 256,
        };
        let records = collect_phases(scale, 2, |_| {});
        let names: Vec<&str> = records.iter().map(|r| r.phase).collect();
        assert_eq!(names, PHASES.to_vec());
        for r in &records {
            assert!(r.count > 0, "{r:?}");
            assert_eq!(r.workers, 2);
            assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us, "{r:?}");
        }
        // Execute samples once per epoch shard: pairs x frames.
        let execute = records.iter().find(|r| r.phase == "execute").unwrap();
        assert_eq!(execute.count, 4 * 3);
    }

    #[test]
    fn overhead_pct_reads_the_ab_rates() {
        let r = TelemetryOverheadRecord {
            events: 1,
            on_events_per_sec: 98.0,
            off_events_per_sec: 100.0,
        };
        assert!((r.overhead_pct() - 2.0).abs() < 1e-9);
        let faster = TelemetryOverheadRecord {
            on_events_per_sec: 102.0,
            ..r
        };
        assert!(faster.overhead_pct() < 0.0);
    }
}
