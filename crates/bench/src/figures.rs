//! Runners for the paper's Figures 6–10.
//!
//! Each runner produces the figure's data series as a [`TextTable`]
//! whose CSV rendering can be plotted directly; the text rendering is a
//! readable preview of the same series.

use tc_core::{LocalTime, TreeClock, VectorClock};
use tc_orders::{HbEngine, PartialOrderKind, RunMetrics};
use tc_trace::gen::Scenario;

use crate::render::{fnum, TextTable};
use crate::runner::{measure, ClockKind, Mode};
use crate::suite::Scale;
use crate::tables::SuiteResult;

/// **Figure 6**: per-trace processing times, tree clocks vs vector
/// clocks — six panels (MAZ/SHB/HB × PO/PO+Analysis) flattened into one
/// long table with `panel` as the first column.
pub fn fig6(results: &[SuiteResult]) -> TextTable {
    let mut t = TextTable::new(["panel", "benchmark", "vc_seconds", "tc_seconds", "speedup"])
        .with_title("Figure 6: times for processing each trace (TC vs VC)");
    for mode in [Mode::Po, Mode::PoAnalysis] {
        for order in PartialOrderKind::ALL {
            let panel = match mode {
                Mode::Po => order.to_string(),
                Mode::PoAnalysis => format!("{order}+Analysis"),
            };
            for r in results {
                let c = r.get(order, mode);
                t.row([
                    panel.clone(),
                    r.name.to_owned(),
                    format!("{:.6}", c.vector.seconds),
                    format!("{:.6}", c.tree.seconds),
                    fnum(c.speedup()),
                ]);
            }
        }
    }
    t
}

/// **Figure 7**: speedup of HB+Analysis as a function of the percentage
/// of synchronization events, over the traces whose total time is not
/// negligible.
pub fn fig7(results: &[SuiteResult], min_seconds: f64) -> TextTable {
    let mut t = TextTable::new(["benchmark", "sync_pct", "speedup"])
        .with_title("Figure 7: HB+Analysis speedup vs fraction of synchronization events");
    for r in results {
        let c = r.get(PartialOrderKind::Hb, Mode::PoAnalysis);
        if c.vector.seconds + c.tree.seconds >= min_seconds {
            t.row([
                r.name.to_owned(),
                fnum(r.stats.sync_pct()),
                fnum(c.speedup()),
            ]);
        }
    }
    t
}

/// **Figure 8**: `TCWork/VTWork` vs `VCWork/VTWork` per trace, for HB.
/// Theorem 1 bounds the first ratio by 3; the second grows with the
/// thread count.
pub fn fig8(results: &[SuiteResult]) -> TextTable {
    let mut t = TextTable::new(["benchmark", "vcwork_over_vtwork", "tcwork_over_vtwork"])
        .with_title("Figure 8: work ratios relative to the VTWork lower bound (HB)");
    for r in results {
        let (tree, vector) = r.work_of(PartialOrderKind::Hb);
        t.row([
            r.name.to_owned(),
            fnum(vector.work_ratio()),
            fnum(tree.work_ratio()),
        ]);
    }
    t
}

/// The histogram buckets of Figure 9 (`VCWork/TCWork` ratios).
pub const FIG9_BUCKETS: [f64; 10] = [1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0];

/// **Figure 9**: histogram of the `VCWork/TCWork` ratio across the
/// suite, one row per bucket, one column per partial order.
pub fn fig9(results: &[SuiteResult]) -> TextTable {
    let mut t = TextTable::new(["bucket", "MAZ", "SHB", "HB"])
        .with_title("Figure 9: histogram of VCWork/TCWork across traces");
    let mut counts = vec![[0u32; 3]; FIG9_BUCKETS.len()];
    for r in results {
        for (col, order) in PartialOrderKind::ALL.iter().enumerate() {
            let (tree, vector) = r.work_of(*order);
            let ratio = vector.ds_work() as f64 / tree.ds_work().max(1) as f64;
            let mut bucket = 0;
            for (i, &b) in FIG9_BUCKETS.iter().enumerate() {
                if ratio >= b {
                    bucket = i;
                }
            }
            counts[bucket][col] += 1;
        }
    }
    for (i, &b) in FIG9_BUCKETS.iter().enumerate() {
        let hi = FIG9_BUCKETS.get(i + 1).copied();
        let label = match hi {
            Some(hi) => format!("[{b:.0},{hi:.0})"),
            None => format!("[{b:.0},∞)"),
        };
        t.row([
            label,
            counts[i][0].to_string(),
            counts[i][1].to_string(),
            counts[i][2].to_string(),
        ]);
    }
    t
}

/// Thread counts swept by Figure 10 (the paper uses 10–360).
pub const FIG10_THREADS: [u32; 7] = [10, 30, 60, 120, 200, 280, 360];

/// Events per Figure 10 trace at each scale (the paper uses 10M).
pub fn fig10_events(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 60_000,
        Scale::Default => 400_000,
        Scale::Full => 2_000_000,
    }
}

/// **Figure 10**: HB computation time vs thread count for the four
/// controlled scenarios, tree vs vector clocks.
pub fn fig10(scale: Scale, mut progress: impl FnMut(&str)) -> TextTable {
    let mut t = TextTable::new(["scenario", "threads", "vc_seconds", "tc_seconds", "speedup"])
        .with_title("Figure 10: scalability on controlled communication patterns (HB)");
    let events = fig10_events(scale);
    for s in Scenario::FIG10 {
        for &threads in &FIG10_THREADS {
            progress(&format!("{s}/{threads}"));
            let trace = s.generate(threads, events, 0xF16 + u64::from(threads));
            let vc = measure(&trace, PartialOrderKind::Hb, ClockKind::Vector, Mode::Po);
            let tc = measure(&trace, PartialOrderKind::Hb, ClockKind::Tree, Mode::Po);
            t.row([
                s.to_string(),
                threads.to_string(),
                format!("{:.6}", vc.seconds),
                format!("{:.6}", tc.seconds),
                fnum(vc.seconds / tc.seconds.max(1e-12)),
            ]);
        }
    }
    t
}

/// **Ablation** (beyond the paper): quantifies what each of the two
/// monotonicity principles contributes, by comparing the tree clock
/// against a degraded variant that still uses the tree but never stops
/// a child scan early (no indirect monotonicity) — approximated here by
/// measuring how much of the join work the `break` saves, via work
/// counters on the same traces.
pub fn ablation(scale: Scale) -> TextTable {
    let mut t = TextTable::new([
        "scenario",
        "threads",
        "tc_examined",
        "vt_work",
        "vc_examined",
    ])
    .with_title("Ablation: entries examined by TC joins/copies vs the VTWork bound vs VC");
    let events = fig10_events(scale) / 4;
    for s in Scenario::ALL {
        // The new structured families ride along in the ablation: their
        // hierarchical/bursty communication is exactly where the two
        // monotonicity principles differ most.
        for &threads in &[16u32, 64] {
            let trace = s.generate(threads, events, 77);
            let tc: RunMetrics = HbEngine::<TreeClock>::run_counted(&trace);
            let vc: RunMetrics = HbEngine::<VectorClock>::run_counted(&trace);
            t.row([
                s.to_string(),
                threads.to_string(),
                tc.ds_work().to_string(),
                tc.vt_work().to_string(),
                vc.ds_work().to_string(),
            ]);
        }
    }
    t
}

/// Sanity helper: the largest local time observed in a figure run
/// (exposed for tests that guard against `LocalTime` overflow at the
/// full scale).
pub fn max_local_time(events: usize, threads: u32) -> LocalTime {
    (events as u64 / u64::from(threads.max(1))).min(u64::from(LocalTime::MAX)) as LocalTime
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Comparison;
    use crate::suite::suite;

    fn tiny_results() -> Vec<SuiteResult> {
        let entry = &suite()[20]; // a scenario entry
        let trace = entry.generate(Scale::Quick);
        let mut results = Vec::new();
        let mut work = Vec::new();
        for order in PartialOrderKind::ALL {
            for mode in [Mode::Po, Mode::PoAnalysis] {
                results.push((order, mode, Comparison::measure(&trace, order, mode)));
            }
            work.push((
                order,
                crate::runner::work_metrics(&trace, order, ClockKind::Tree),
                crate::runner::work_metrics(&trace, order, ClockKind::Vector),
            ));
        }
        vec![SuiteResult {
            name: entry.name,
            stats: trace.stats(),
            results,
            work,
        }]
    }

    #[test]
    fn fig6_emits_six_panels_per_trace() {
        let r = tiny_results();
        let t = fig6(&r);
        assert_eq!(t.len(), 6);
        assert!(t.to_csv().contains("HB+Analysis"));
    }

    #[test]
    fn fig7_filters_fast_traces() {
        let r = tiny_results();
        assert_eq!(fig7(&r, 0.0).len(), 1);
        assert_eq!(fig7(&r, f64::INFINITY).len(), 0);
    }

    #[test]
    fn fig8_reports_bounded_tree_ratio() {
        let r = tiny_results();
        let t = fig8(&r);
        assert_eq!(t.len(), 1);
        let csv = t.to_csv();
        let ratio: f64 = crate::render::csv_field(&csv, 2, 2)
            .unwrap_or_else(|e| panic!("malformed fig8 CSV: {e}"));
        assert!(ratio <= 3.0, "Theorem 1 violated in fig8: {ratio}");
    }

    #[test]
    fn fig9_buckets_sum_to_suite_size() {
        let r = tiny_results();
        let t = fig9(&r);
        assert_eq!(t.len(), FIG9_BUCKETS.len());
        let csv = t.to_csv();
        let total: u32 = (0..FIG9_BUCKETS.len())
            .map(|i| {
                crate::render::csv_field::<u32>(&csv, i + 2, 3)
                    .unwrap_or_else(|e| panic!("malformed fig9 CSV: {e}"))
            })
            .sum();
        assert_eq!(total, 1); // one trace in the HB column
    }

    #[test]
    fn local_times_stay_in_range_at_full_scale() {
        assert!(max_local_time(10_000_000, 10) < LocalTime::MAX);
    }
}
