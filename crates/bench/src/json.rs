//! A minimal, dependency-free JSON layer for the perf baseline.
//!
//! The build environment carries no crates.io dependencies (see the
//! `vendor/` stand-ins), so the schema-stable `BENCH_*.json` artifacts
//! are written and validated with this small implementation: a
//! [`Value`] tree, a writer with correct string/number escaping, and a
//! recursive-descent parser sufficient for round-tripping our own
//! output and validating it in CI.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are kept sorted (`BTreeMap`), which also makes
    /// the emitted artifacts byte-stable across runs.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience constructor for an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error, or trailing garbage after the document.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Num(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Num(v as f64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Num(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    /// Pretty-prints with 2-space indentation (the format of the
    /// committed `BENCH_*.json` artifacts).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write(self, f, 0)
    }
}

fn write(v: &Value, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let pad1 = "  ".repeat(indent + 1);
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Num(n) => write_num(*n, f),
        Value::Str(s) => write_str(s, f),
        Value::Arr(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            writeln!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                f.write_str(&pad1)?;
                write(item, f, indent + 1)?;
                writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
            }
            write!(f, "{pad}]")
        }
        Value::Obj(map) => {
            if map.is_empty() {
                return f.write_str("{}");
            }
            writeln!(f, "{{")?;
            for (i, (k, item)) in map.iter().enumerate() {
                f.write_str(&pad1)?;
                write_str(k, f)?;
                f.write_str(": ")?;
                write(item, f, indent + 1)?;
                writeln!(f, "{}", if i + 1 < map.len() { "," } else { "" })?;
            }
            write!(f, "{pad}}}")
        }
    }
}

fn write_num(n: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; clamp to null-ish zero rather than
        // emit an invalid document.
        return f.write_str("0");
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_str(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---- parser ---------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

/// Nesting bound of the recursive-descent parser: hostile input must
/// produce an `Err`, not a stack overflow (which `catch_unwind` in the
/// CLI cannot intercept). Our own artifacts nest 3 levels deep.
const MAX_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected end or token at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_owned())
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own
                        // artifacts; reject rather than mis-decode.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("unsupported \\u escape at byte {}", *pos))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("invalid escape `\\{}`", other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let v = Value::obj([
            ("name", Value::from("tree \"clock\"")),
            ("count", Value::from(42u64)),
            ("ratio", Value::from(2.5)),
            ("ok", Value::from(true)),
            (
                "items",
                Value::Arr(vec![Value::Null, Value::from(1u64), Value::from("x")]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Value::parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\\n\" : null } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-25.0)
        );
        assert!(matches!(v.get("b\n"), Some(Value::Null)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Reasonable nesting still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Value::from(123456u64).to_string(), "123456");
        assert_eq!(Value::from(0.5).to_string(), "0.5");
    }
}
