//! The synthetic benchmark suite simulating the paper's 153 logged
//! traces.
//!
//! The paper's traces (Table 3) come from Java programs (IBM Contest,
//! Java Grande, DaCapo, SIR) and OpenMP applications (DataRaceBench,
//! CORAL, ECP, Mantevo, …). They span 3–224 threads, 0–60.5k locks,
//! 18–37.8M variables, and 0–44.4% synchronization events (mean 9.5%).
//! Each suite entry below reproduces one of the recurring *shapes* in
//! that population — OpenMP-style wide/low-sync loops at 16 and 56
//! threads, Java-style small-thread-count lock-heavy programs, the
//! skewed/star/pairwise communication patterns — with event counts
//! scaled to laptop size (the cost model of both clock representations
//! is linear in events, so scaling down preserves every ratio the paper
//! reports).

use tc_trace::gen::{Scenario, WorkloadSpec};
use tc_trace::Trace;

/// Event-count scale of the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~40k events per trace: smoke-test the full pipeline in seconds.
    Quick,
    /// ~200k events per trace: the default for EXPERIMENTS.md numbers.
    Default,
    /// ~1M events per trace: closest to the paper (minutes of runtime).
    Full,
}

impl Scale {
    /// Multiplier applied to each entry's base event count.
    pub fn factor(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Default => 5,
            Scale::Full => 25,
        }
    }
}

/// How one suite trace is generated.
#[derive(Clone, Debug)]
enum Kind {
    Workload(WorkloadSpec),
    Scenario(Scenario, u32),
}

/// One named benchmark trace of the suite.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// Stable human-readable name (used in Table 3 and all CSV files).
    pub name: &'static str,
    kind: Kind,
    base_events: usize,
}

impl SuiteEntry {
    /// Generates the trace at the given scale (deterministic).
    pub fn generate(&self, scale: Scale) -> Trace {
        let events = self.base_events * scale.factor();
        match &self.kind {
            Kind::Workload(spec) => WorkloadSpec { events, ..*spec }.generate(),
            Kind::Scenario(s, threads) => {
                s.generate(*threads, events, 0xC10C + u64::from(*threads))
            }
        }
    }
}

fn workload(
    name: &'static str,
    threads: u32,
    locks: u32,
    vars: u32,
    sync_ratio: f64,
    write_ratio: f64,
    seed: u64,
) -> SuiteEntry {
    SuiteEntry {
        name,
        kind: Kind::Workload(WorkloadSpec {
            threads,
            locks,
            vars,
            sync_ratio,
            write_ratio,
            seed,
            ..WorkloadSpec::default()
        }),
        base_events: 40_000,
    }
}

fn scenario(name: &'static str, s: Scenario, threads: u32) -> SuiteEntry {
    SuiteEntry {
        name,
        kind: Kind::Scenario(s, threads),
        base_events: 40_000,
    }
}

/// The full suite: 39 deterministic traces covering the shape space of
/// the paper's Table 3, plus the structured workload families.
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        // OpenMP-style: 16/56 threads, large variable pools, low sync
        // (the DataRaceBench / CoMD / miniFE / HPCCG shapes).
        workload("omp16-lowsync", 16, 32, 4_096, 0.03, 0.4, 101),
        workload("omp56-lowsync", 56, 112, 4_096, 0.03, 0.4, 102),
        workload("omp16-midsync", 16, 32, 2_048, 0.10, 0.4, 103),
        workload("omp56-midsync", 56, 112, 2_048, 0.10, 0.4, 104),
        workload("omp16-hisync", 16, 32, 1_024, 0.30, 0.4, 105),
        workload("omp56-hisync", 56, 112, 1_024, 0.30, 0.4, 106),
        workload("omp112-lowsync", 112, 128, 4_096, 0.03, 0.4, 107),
        workload("omp112-midsync", 112, 128, 2_048, 0.10, 0.4, 108),
        // Task-parallel style: fork/join wrapped, skewed activity
        // (fib-taskdep, taskloop shapes).
        SuiteEntry {
            name: "tasks16-forkjoin",
            kind: Kind::Workload(WorkloadSpec {
                threads: 16,
                locks: 16,
                vars: 512,
                sync_ratio: 0.08,
                write_ratio: 0.5,
                fork_join: true,
                hot_thread_share: 0.2,
                hot_thread_weight: 5,
                seed: 109,
                ..WorkloadSpec::default()
            }),
            base_events: 40_000,
        },
        SuiteEntry {
            name: "tasks56-forkjoin",
            kind: Kind::Workload(WorkloadSpec {
                threads: 56,
                locks: 56,
                vars: 512,
                sync_ratio: 0.08,
                write_ratio: 0.5,
                fork_join: true,
                hot_thread_share: 0.2,
                hot_thread_weight: 5,
                seed: 110,
                ..WorkloadSpec::default()
            }),
            base_events: 40_000,
        },
        // Java-style: few threads, lock-heavy, smaller variable pools
        // (IBM Contest / SIR shapes: account, clean, ftpserver, ...).
        workload("java-k3-locky", 3, 4, 64, 0.40, 0.3, 111),
        workload("java-k5-locky", 5, 8, 128, 0.35, 0.3, 112),
        workload("java-k8-locky", 8, 16, 256, 0.30, 0.3, 113),
        workload("java-k13-locky", 13, 16, 256, 0.25, 0.3, 114),
        workload("java-k5-rwheavy", 5, 2, 512, 0.02, 0.5, 115),
        workload("java-k8-rwheavy", 8, 2, 512, 0.02, 0.5, 116),
        // DaCapo-style servers: many threads, skewed, moderate sync
        // (cassandra/tradebeans shapes, scaled thread counts).
        workload("server-k44", 44, 64, 2_048, 0.12, 0.35, 117),
        workload("server-k112", 112, 256, 2_048, 0.12, 0.35, 118),
        workload("server-k224", 224, 512, 2_048, 0.12, 0.35, 119),
        // Sync-only extremes (the 44.4% sync outliers of Table 1 are
        // lock-dominated; these are 100% sync).
        scenario("single-lock-16", Scenario::SingleLock, 16),
        scenario("single-lock-64", Scenario::SingleLock, 64),
        scenario("skewed-locks-16", Scenario::SkewedLocks, 16),
        scenario("skewed-locks-64", Scenario::SkewedLocks, 64),
        scenario("skewed-locks-128", Scenario::SkewedLocks, 128),
        scenario("star-16", Scenario::Star, 16),
        scenario("star-64", Scenario::Star, 64),
        scenario("star-128", Scenario::Star, 128),
        scenario("star-224", Scenario::Star, 224),
        scenario("pairwise-16", Scenario::Pairwise, 16),
        scenario("pairwise-64", Scenario::Pairwise, 64),
        // Mixed access/sync with many variables (xalan/lusearch-like).
        workload("mixed-k7-manyvars", 7, 8, 16_384, 0.06, 0.35, 120),
        workload("mixed-k15-manyvars", 15, 16, 16_384, 0.06, 0.35, 121),
        workload("mixed-k31-manyvars", 31, 32, 16_384, 0.06, 0.35, 122),
        workload("mixed-k63-manyvars", 63, 64, 16_384, 0.06, 0.35, 123),
        // Structured workload families (beyond the paper): hierarchical
        // task trees, bulk-synchronous rounds, streaming pipelines and
        // phase-changing bursty channels.
        scenario("forktree-32", Scenario::ForkJoinTree, 32),
        scenario("barrier-32", Scenario::BarrierPhases, 32),
        scenario("pipeline-32", Scenario::Pipeline, 32),
        scenario("readmostly-32", Scenario::ReadMostly, 32),
        scenario("bursty-32", Scenario::BurstyChannels, 32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_39_uniquely_named_entries() {
        let s = suite();
        assert_eq!(s.len(), 39);
        let mut names: Vec<_> = s.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 39, "duplicate suite names");
    }

    #[test]
    fn quick_scale_traces_are_valid_and_sized() {
        for entry in suite().iter().take(6) {
            let t = entry.generate(Scale::Quick);
            assert!(t.validate().is_ok(), "{} invalid", entry.name);
            assert!(t.len() >= 40_000, "{} too small: {}", entry.name, t.len());
            assert!(t.len() < 60_000, "{} too large: {}", entry.name, t.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let e = &suite()[0];
        assert_eq!(
            e.generate(Scale::Quick).events(),
            e.generate(Scale::Quick).events()
        );
    }

    #[test]
    fn scales_multiply_event_counts() {
        let e = &suite()[12]; // a java-style entry
        let q = e.generate(Scale::Quick).len();
        let d = e.generate(Scale::Default).len();
        assert!(d >= 4 * q, "default scale should be ~5x quick");
    }

    #[test]
    fn suite_covers_the_papers_thread_range() {
        let s = suite();
        let max_threads = s
            .iter()
            .map(|e| e.generate(Scale::Quick).thread_count())
            .max()
            .unwrap();
        let min_threads = s
            .iter()
            .map(|e| e.generate(Scale::Quick).thread_count())
            .min()
            .unwrap();
        assert!(min_threads <= 3, "paper's suite starts at 3 threads");
        assert!(max_threads >= 224, "paper's suite reaches 224 threads");
    }
}
