//! Micro-benchmarks of the fundamental clock operations: join and
//! monotone copy, on the tree shapes that distinguish the two
//! representations (star-shaped knowledge with a single progressed
//! entry — the tree clock's best case — and a fully progressed clock —
//! the worst case, where the tree's overhead shows).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use tc_core::{LogicalClock, ThreadId, TreeClock, VectorClock};

/// Builds a clock that knows `k` threads (a star under its root) plus a
/// source clock in which exactly one thread has progressed.
fn one_progressed<C: LogicalClock>(k: u32) -> (C, C) {
    let mut target = C::new();
    target.init_root(ThreadId::new(0));
    target.increment(1);
    for i in 1..k {
        let mut other = C::new();
        other.init_root(ThreadId::new(i));
        other.increment(1);
        target.increment(1);
        target.join(&other);
    }
    // The source: thread 1 at a later time.
    let mut src = C::new();
    src.init_root(ThreadId::new(1));
    src.increment(5);
    (target, src)
}

/// Builds a pair where *every* entry of the source has progressed (the
/// tree clock's worst case: the whole tree must be rebuilt).
fn all_progressed<C: LogicalClock>(k: u32) -> (C, C) {
    let (a, _) = one_progressed::<C>(k);
    let mut b = C::new();
    b.init_root(ThreadId::new(0));
    b.increment(1);
    for i in 1..k {
        let mut other = C::new();
        other.init_root(ThreadId::new(i));
        other.increment(10); // later than everything `a` knows
        b.increment(1);
        b.join(&other);
    }
    b.increment(100);
    // `a` must not know more about t0 than `b` (join contract): make
    // the target a fresh observer instead.
    let mut target = C::new();
    target.init_root(ThreadId::new(k));
    target.increment(1);
    target.join(&a);
    (target, b)
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for k in [16u32, 64, 256] {
        let (t_tc, s_tc) = one_progressed::<TreeClock>(k);
        g.bench_with_input(BenchmarkId::new("one-progressed/tree", k), &k, |b, _| {
            b.iter_batched(
                || t_tc.clone(),
                |mut t| t.join(&s_tc),
                BatchSize::SmallInput,
            )
        });
        let (t_vc, s_vc) = one_progressed::<VectorClock>(k);
        g.bench_with_input(BenchmarkId::new("one-progressed/vector", k), &k, |b, _| {
            b.iter_batched(
                || t_vc.clone(),
                |mut t| t.join(&s_vc),
                BatchSize::SmallInput,
            )
        });
        let (t_tc, s_tc) = all_progressed::<TreeClock>(k);
        g.bench_with_input(BenchmarkId::new("all-progressed/tree", k), &k, |b, _| {
            b.iter_batched(
                || t_tc.clone(),
                |mut t| t.join(&s_tc),
                BatchSize::SmallInput,
            )
        });
        let (t_vc, s_vc) = all_progressed::<VectorClock>(k);
        g.bench_with_input(BenchmarkId::new("all-progressed/vector", k), &k, |b, _| {
            b.iter_batched(
                || t_vc.clone(),
                |mut t| t.join(&s_vc),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_monotone_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("monotone_copy");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for k in [16u32, 64, 256] {
        // Source: a thread clock knowing k threads; target: a lock clock
        // that was copied earlier and has seen one more local increment.
        let (mut src_tc, _) = one_progressed::<TreeClock>(k);
        let mut lock_tc = TreeClock::new();
        lock_tc.monotone_copy(&src_tc);
        src_tc.increment(1);
        g.bench_with_input(BenchmarkId::new("incremental/tree", k), &k, |b, _| {
            b.iter_batched(
                || lock_tc.clone(),
                |mut l| l.monotone_copy(&src_tc),
                BatchSize::SmallInput,
            )
        });
        let (mut src_vc, _) = one_progressed::<VectorClock>(k);
        let mut lock_vc = VectorClock::new();
        lock_vc.monotone_copy(&src_vc);
        src_vc.increment(1);
        g.bench_with_input(BenchmarkId::new("incremental/vector", k), &k, |b, _| {
            b.iter_batched(
                || lock_vc.clone(),
                |mut l| l.monotone_copy(&src_vc),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join, bench_monotone_copy);
criterion_main!(benches);
