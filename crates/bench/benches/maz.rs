//! End-to-end MAZ computation benchmarks: tree clocks vs vector
//! clocks on representative traces (one entry per paper table row,
//! at benchmark scale).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tc_core::{TreeClock, VectorClock};
use tc_orders::MazEngine as ENGINE;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("maz");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let traces = [
        ("star-64", tc_trace::gen::scenarios::star(64, 20_000, 1)),
        (
            "workload-16",
            tc_trace::gen::WorkloadSpec {
                threads: 16,
                locks: 32,
                vars: 1024,
                events: 20_000,
                sync_ratio: 0.1,
                seed: 42,
                ..tc_trace::gen::WorkloadSpec::default()
            }
            .generate(),
        ),
    ];
    for (name, trace) in &traces {
        g.bench_with_input(BenchmarkId::new("tree", name), trace, |b, t| {
            b.iter(|| ENGINE::<TreeClock>::run(t))
        });
        g.bench_with_input(BenchmarkId::new("vector", name), trace, |b, t| {
            b.iter(|| ENGINE::<VectorClock>::run(t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
