//! Streaming-overhead benchmarks: the incremental detector's
//! feed-one-event path against the equivalent batch detector run, plus
//! the cost of the bounded-memory policies (retirement, eviction) and
//! of taking a checkpoint mid-stream.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tc_analysis::HbRaceDetector;
use tc_core::TreeClock;
use tc_stream::{DetectorConfig, IncrementalDetector};
use tc_trace::gen::WorkloadSpec;
use tc_trace::{Trace, TraceBuilder};

fn workload() -> Trace {
    WorkloadSpec {
        threads: 16,
        locks: 8,
        vars: 64,
        events: 20_000,
        sync_ratio: 0.1,
        shared_fraction: 0.6,
        seed: 7,
        ..WorkloadSpec::default()
    }
    .generate()
}

/// Spawn/join churn: the workload retirement exists for.
fn churn() -> Trace {
    let mut b = TraceBuilder::new();
    let mut next = 1u32;
    for _ in 0..250 {
        let kids: Vec<u32> = (0..8)
            .map(|_| {
                let k = next;
                next += 1;
                k
            })
            .collect();
        for &k in &kids {
            b.fork(0, k);
        }
        for &k in &kids {
            b.acquire_id(k, 0);
            b.write_id(k, 0);
            b.release_id(k, 0);
        }
        for &k in &kids {
            b.join(0, k);
        }
    }
    b.finish()
}

fn stream_run(trace: &Trace, config: DetectorConfig) -> u64 {
    let mut d = IncrementalDetector::<TreeClock>::new(config);
    for e in trace {
        d.feed(e).expect("benchmark traces are well-formed");
    }
    d.report().total
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));

    let traces = [("workload-16", workload()), ("churn-8x250", churn())];
    for (name, trace) in &traces {
        g.bench_with_input(BenchmarkId::new("batch", name), trace, |b, t| {
            b.iter(|| HbRaceDetector::<TreeClock>::new(t).run(t).total)
        });
        g.bench_with_input(BenchmarkId::new("incremental", name), trace, |b, t| {
            b.iter(|| stream_run(t, DetectorConfig::default()))
        });
        g.bench_with_input(
            BenchmarkId::new("incremental-evict", name),
            trace,
            |b, t| {
                b.iter(|| {
                    stream_run(
                        t,
                        DetectorConfig {
                            evict_every: Some(256),
                            ..DetectorConfig::default()
                        },
                    )
                })
            },
        );
    }
    g.bench_with_input(
        BenchmarkId::new("checkpoint", "workload-16"),
        &traces[0].1,
        |b, t| {
            let mut d = IncrementalDetector::<TreeClock>::new(DetectorConfig::default());
            for e in t {
                d.feed(e).unwrap();
            }
            b.iter(|| d.checkpoint().to_bytes().len())
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
