//! Integration tests of the trace file formats across crates: a trace
//! that survives a round-trip through disk must produce bit-identical
//! analysis results.

use treeclocks::prelude::*;
use treeclocks::trace::gen::WorkloadSpec;
use treeclocks::trace::{binary_format, text_format};

fn sample_trace() -> Trace {
    WorkloadSpec {
        threads: 6,
        locks: 3,
        vars: 32,
        events: 5_000,
        sync_ratio: 0.2,
        fork_join: true,
        seed: 77,
        ..WorkloadSpec::default()
    }
    .generate()
}

#[test]
fn binary_round_trip_preserves_analysis_results() {
    let trace = sample_trace();
    let bytes = binary_format::to_binary(&trace);
    let replay = binary_format::read_binary(bytes.as_slice()).expect("round trip");
    assert_eq!(trace.events(), replay.events());

    let original = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    let replayed = HbRaceDetector::<TreeClock>::new(&replay).run(&replay);
    assert_eq!(original, replayed);

    assert_eq!(
        ShbEngine::<TreeClock>::run(&trace).vt_work(),
        ShbEngine::<TreeClock>::run(&replay).vt_work()
    );
}

#[test]
fn text_round_trip_preserves_analysis_results() {
    // The text format round-trips *names*; dense ids are re-interned in
    // first-appearance order, a bijective renaming that must not change
    // any analysis outcome.
    let trace = sample_trace();
    let text = text_format::to_text(&trace);
    let replay = text_format::parse_text(&text).expect("round trip");
    assert_eq!(trace.len(), replay.len());
    assert_eq!(trace.thread_count(), replay.thread_count());
    assert_eq!(trace.lock_count(), replay.lock_count());
    assert_eq!(trace.var_count(), replay.var_count());
    // Rendering again is a fixed point (names are preserved exactly).
    assert_eq!(text_format::to_text(&replay), text);

    let original = MazAnalyzer::<VectorClock>::new(&trace).run(&trace);
    let replayed = MazAnalyzer::<VectorClock>::new(&replay).run(&replay);
    assert_eq!(original.total, replayed.total);
    assert_eq!(original.checks, replayed.checks);
}

#[test]
fn formats_agree_with_each_other() {
    let trace = sample_trace();
    let via_text = text_format::parse_text(&text_format::to_text(&trace)).unwrap();
    let via_bin = binary_format::read_binary(binary_format::to_binary(&trace).as_slice()).unwrap();
    assert_eq!(via_text.len(), via_bin.len());
    assert_eq!(via_text.stats().sync_events, via_bin.stats().sync_events);
    // The binary format preserves ids exactly.
    assert_eq!(via_bin.events(), trace.events());
}

#[test]
fn disk_round_trip_through_real_files() {
    let trace = sample_trace();
    let dir = std::env::temp_dir().join(format!("treeclocks-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text_path = dir.join("t.trace");
    let bin_path = dir.join("t.tctr");

    text_format::write_text(&trace, std::fs::File::create(&text_path).unwrap()).unwrap();
    binary_format::write_binary(&trace, std::fs::File::create(&bin_path).unwrap()).unwrap();

    let t = text_format::read_text(std::fs::File::open(&text_path).unwrap()).unwrap();
    let b = binary_format::read_binary(std::fs::File::open(&bin_path).unwrap()).unwrap();
    assert_eq!(t.len(), trace.len());
    assert_eq!(text_format::to_text(&t), text_format::to_text(&trace));
    assert_eq!(b.events(), trace.events());

    // The binary format is substantially denser.
    let text_size = std::fs::metadata(&text_path).unwrap().len();
    let bin_size = std::fs::metadata(&bin_path).unwrap().len();
    assert!(
        bin_size * 2 < text_size,
        "binary ({bin_size}) should be far denser than text ({text_size})"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_files_fail_loudly_not_silently() {
    let trace = sample_trace();
    let mut bytes = binary_format::to_binary(&trace);
    bytes[0] = b'X'; // clobber the magic
    assert!(binary_format::read_binary(bytes.as_slice()).is_err());

    let mut text = text_format::to_text(&trace);
    text.push_str("t0 explode x\n");
    assert!(text_format::parse_text(&text).is_err());
}
