//! Cross-crate integration: generator → engine → detector pipelines,
//! exercised through the facade crate exactly as a downstream user
//! would, for both clock representations.

use treeclocks::prelude::*;
use treeclocks::trace::gen::{scenarios::Scenario, WorkloadSpec};

/// Every registered scenario family, end to end: identical timestamps,
/// identical race reports, representation-independent `VTWork`, and
/// the Theorem 1 bound on tree-clock work.
#[test]
fn scenarios_full_pipeline() {
    for s in Scenario::ALL {
        let trace = s.generate(24, 30_000, 99);
        trace.validate().expect("generated traces are well-formed");

        let tc = HbEngine::<TreeClock>::run_counted(&trace);
        let vc = HbEngine::<VectorClock>::run_counted(&trace);
        assert_eq!(tc.vt_work(), vc.vt_work(), "{s}: VTWork diverged");
        assert!(
            tc.ds_work() <= 3 * tc.vt_work(),
            "{s}: tree-clock work {} exceeds 3x the lower bound {}",
            tc.ds_work(),
            tc.vt_work()
        );

        let r_tc = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        let r_vc = HbRaceDetector::<VectorClock>::new(&trace).run(&trace);
        assert_eq!(r_tc, r_vc, "{s}: race reports diverged");
        // Every registered family is race-free by construction: the
        // Figure-10 scenarios are sync-only, and the structured
        // families only touch shared buffers inside critical sections.
        assert!(r_tc.is_empty(), "{s}: scenario traces cannot race");
    }
}

/// On the paper's own Figure-10 scenarios the tree additionally never
/// touches more entries than the vector (the regime of Figures 8/10;
/// not a theorem for arbitrary topologies).
#[test]
fn fig10_tree_work_beats_vector_work() {
    for s in Scenario::FIG10 {
        let trace = s.generate(24, 30_000, 99);
        let tc = HbEngine::<TreeClock>::run_counted(&trace);
        let vc = HbEngine::<VectorClock>::run_counted(&trace);
        assert!(
            tc.ds_work() <= vc.ds_work(),
            "{s}: the tree touched more entries than the vector"
        );
    }
}

/// A mixed workload through all three partial orders and analyses.
#[test]
fn workload_all_orders() {
    let trace = WorkloadSpec {
        threads: 12,
        locks: 6,
        vars: 64,
        events: 25_000,
        sync_ratio: 0.15,
        write_ratio: 0.4,
        fork_join: true,
        seed: 31,
        ..WorkloadSpec::default()
    }
    .generate();

    // Timestamps agree between representations for all three orders.
    assert_eq!(
        HbEngine::<TreeClock>::collect_timestamps(&trace),
        HbEngine::<VectorClock>::collect_timestamps(&trace)
    );
    assert_eq!(
        ShbEngine::<TreeClock>::collect_timestamps(&trace),
        ShbEngine::<VectorClock>::collect_timestamps(&trace)
    );
    assert_eq!(
        MazEngine::<TreeClock>::collect_timestamps(&trace),
        MazEngine::<VectorClock>::collect_timestamps(&trace)
    );

    // Orders are nested: HB ⊆ SHB ⊆ MAZ at every event.
    let hb = HbEngine::<TreeClock>::collect_timestamps(&trace);
    let shb = ShbEngine::<TreeClock>::collect_timestamps(&trace);
    let maz = MazEngine::<TreeClock>::collect_timestamps(&trace);
    for i in 0..trace.len() {
        assert!(hb[i].leq(&shb[i]), "HB ⊄ SHB at {i}");
        assert!(shb[i].leq(&maz[i]), "SHB ⊄ MAZ at {i}");
    }

    // Detector reports agree between representations.
    assert_eq!(
        ShbRaceDetector::<TreeClock>::new(&trace).run(&trace),
        ShbRaceDetector::<VectorClock>::new(&trace).run(&trace)
    );
    assert_eq!(
        MazAnalyzer::<TreeClock>::new(&trace).run(&trace),
        MazAnalyzer::<VectorClock>::new(&trace).run(&trace)
    );
}

/// Larger sweep: tree-clock optimality holds across thread counts and
/// sync densities (Theorem 1 at integration scale).
#[test]
fn vt_optimality_sweep() {
    for threads in [4u32, 16, 64] {
        for sync in [2u32, 10, 40] {
            let trace = WorkloadSpec {
                threads,
                locks: threads,
                vars: 256,
                events: 20_000,
                sync_ratio: f64::from(sync) / 100.0,
                seed: u64::from(threads * 100 + sync),
                ..WorkloadSpec::default()
            }
            .generate();
            for (name, m) in [
                ("hb", HbEngine::<TreeClock>::run_counted(&trace)),
                ("shb", ShbEngine::<TreeClock>::run_counted(&trace)),
                ("maz", MazEngine::<TreeClock>::run_counted(&trace)),
            ] {
                assert!(
                    m.ds_work() <= 3 * m.vt_work(),
                    "{name} k={threads} sync={sync}%: {} > 3*{}",
                    m.ds_work(),
                    m.vt_work()
                );
            }
        }
    }
}

/// The SHB deep-copy rate is tied to racy writes: on a fully locked
/// trace it is zero; on a racy one it is positive (Section 5.1).
#[test]
fn deep_copy_rate_tracks_races() {
    // vars >> threads so every thread's warm-up write gets a distinct
    // private variable (the warm-up itself is unlocked by design).
    let locked = WorkloadSpec {
        threads: 8,
        locks: 1,
        vars: 64,
        events: 10_000,
        sync_ratio: 1.0, // every access inside a critical section
        seed: 4,
        ..WorkloadSpec::default()
    }
    .generate();
    let m = ShbEngine::<TreeClock>::run(&locked);
    assert_eq!(
        m.deep_copies, 0,
        "no racy writes -> every last-write copy is monotone"
    );

    let racy = WorkloadSpec {
        threads: 8,
        locks: 1,
        vars: 4,
        events: 10_000,
        sync_ratio: 0.0,
        write_ratio: 0.5,
        seed: 5,
        ..WorkloadSpec::default()
    }
    .generate();
    let m = ShbEngine::<TreeClock>::run(&racy);
    assert!(m.deep_copies > 0, "racy writes must trigger deep copies");
    let report = ShbRaceDetector::<TreeClock>::new(&racy).run(&racy);
    assert!(!report.is_empty());
}

/// Facade surface: the prelude exposes everything the README promises.
#[test]
fn prelude_surface_is_usable() {
    let mut clock = TreeClock::new();
    clock.init_root(ThreadId::new(0));
    clock.increment(1);
    let time: VectorTime = clock.vector_time();
    assert_eq!(time.get(ThreadId::new(0)), 1);

    let e = Epoch::new(ThreadId::new(0), 1);
    assert!(e.leq_clock(&clock));

    let stats: OpStats = clock.join_counted(&TreeClock::new());
    assert_eq!(stats, OpStats::NOOP);

    let (_mode, _stats): (CopyMode, OpStats) = TreeClock::new().copy_check_monotone_counted(&clock);

    let m: RunMetrics = RunMetrics::new();
    assert_eq!(m.vt_work(), 0);
}
