//! Fast manifest-level regression guard: the scenario registry is
//! intact and every scenario produces a well-formed trace at small
//! size. Runs in milliseconds, in front of the 30k-event pipeline test,
//! so a broken generator or a mis-wired workspace member fails loudly
//! and quickly.

use treeclocks::trace::gen::{scenarios::Scenario, WorkloadSpec};

#[test]
fn scenario_registry_is_populated() {
    assert!(!Scenario::ALL.is_empty(), "Scenario::ALL must not be empty");
    assert_eq!(
        Scenario::ALL.len(),
        4,
        "the paper defines exactly four Figure-10 scenarios"
    );
    // Every scenario round-trips through its display name, so the CLI
    // `--scenario` flag can reach all of them.
    for s in Scenario::ALL {
        let parsed: Scenario = s.to_string().parse().expect("name parses back");
        assert_eq!(parsed, s);
    }
}

#[test]
fn every_scenario_generates_a_clean_small_trace() {
    for s in Scenario::ALL {
        let trace = s.generate(4, 200, 1);
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{s}: invalid small trace: {e}"));
        assert_eq!(trace.thread_count(), 4, "{s}: lost threads at small size");
        assert!(trace.len() >= 200, "{s}: undershot the event budget");
    }
}

#[test]
fn default_workload_generates_a_clean_small_trace() {
    let trace = WorkloadSpec {
        threads: 4,
        events: 300,
        ..WorkloadSpec::default()
    }
    .generate();
    trace
        .validate()
        .expect("small default workload is well-formed");
    assert_eq!(trace.thread_count(), 4);
}
