//! Fast manifest-level regression guard: the scenario registry is
//! intact and every scenario produces a well-formed trace at small
//! size. Runs in milliseconds, in front of the 30k-event pipeline test,
//! so a broken generator or a mis-wired workspace member fails loudly
//! and quickly.

use treeclocks::trace::gen::{scenarios::Scenario, WorkloadSpec};
use treeclocks::trace::Op;

#[test]
fn scenario_registry_is_populated() {
    assert_eq!(
        Scenario::FIG10.len(),
        4,
        "the paper defines exactly four Figure-10 scenarios"
    );
    assert_eq!(
        Scenario::ALL.len(),
        10,
        "the registry carries the four Figure-10 scenarios plus the six \
         structured workload families"
    );
    assert_eq!(Scenario::ALL[..4], Scenario::FIG10);
    // Every scenario round-trips through its display name, so the CLI
    // `--scenario` flag and the conformance corpus can reach all of
    // them.
    for s in Scenario::ALL {
        let parsed: Scenario = s.to_string().parse().expect("name parses back");
        assert_eq!(parsed, s);
    }
}

#[test]
fn every_scenario_generates_a_clean_small_trace() {
    for s in Scenario::ALL {
        let trace = s.generate(4, 200, 1);
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{s}: invalid small trace: {e}"));
        assert_eq!(trace.thread_count(), 4, "{s}: lost threads at small size");
        assert!(trace.len() >= 200, "{s}: undershot the event budget");
        if s.is_sync_only() {
            assert_eq!(
                trace.stats().sync_pct(),
                100.0,
                "{s}: Figure-10 scenarios are lock-only"
            );
        }
    }
}

/// Structural fingerprints of the five new workload families, at smoke
/// size: the shapes that distinguish them must survive refactors.
#[test]
fn new_family_shapes_hold_at_small_size() {
    let fork_join = Scenario::ForkJoinTree.generate(4, 200, 1);
    assert!(matches!(fork_join[0].op, Op::Fork(_)));
    assert!(matches!(fork_join[fork_join.len() - 1].op, Op::Join(_)));

    let barrier = Scenario::BarrierPhases.generate(4, 200, 1);
    assert_eq!(barrier.lock_count(), 1, "one barrier lock");

    let pipeline = Scenario::Pipeline.generate(4, 200, 1);
    assert_eq!(pipeline.lock_count(), 3, "one channel per adjacent pair");

    let read_mostly = Scenario::ReadMostly.generate(4, 2_000, 1);
    let s = read_mostly.stats();
    assert!(s.read_events > 4 * s.write_events, "read-dominated");

    let bursty = Scenario::BurstyChannels.generate(4, 200, 1);
    assert!(bursty.lock_count() <= 6, "at most one channel per pair");
}

#[test]
fn default_workload_generates_a_clean_small_trace() {
    let trace = WorkloadSpec {
        threads: 4,
        events: 300,
        ..WorkloadSpec::default()
    }
    .generate();
    trace
        .validate()
        .expect("small default workload is well-formed");
    assert_eq!(trace.thread_count(), 4);
}

/// The conformance crate's quick corpus is reachable from the facade's
/// dependents and stays in sync with the registry.
#[test]
fn conformance_quick_corpus_spans_the_registry() {
    use treeclocks::conformance::{Corpus, TraceSource};
    let corpus = Corpus::quick();
    for s in Scenario::ALL {
        assert!(
            corpus
                .cases
                .iter()
                .any(|c| c.source == TraceSource::Scenario(s)),
            "{s} missing from the quick conformance corpus"
        );
    }
}
